//! Streaming multiprocessor: warp scheduling and issue.
//!
//! One warp instruction issues per SM per cycle (the paper's in-order
//! 32-wide pipeline at warp granularity). Memory instructions coalesce into
//! line requests that go to the SM's private L1D; a warp blocks until all
//! its outstanding loads complete, exactly like GPGPU-Sim's scoreboard on
//! the destination register. Warps are scheduled loose-round-robin, with
//! priority to a warp that still holds the LSU (partially issued coalesced
//! access).

use std::collections::VecDeque;

/// Line requests the L1 port accepts per cycle (128 B external bus feeding
/// a 64 B-wide 2x-clocked internal bus — §III-A of the paper).
pub const L1_PORT_WIDTH: usize = 2;

/// Warp scheduling policy.
///
/// GPGPU-Sim's default is greedy-then-oldest (GTO): keep issuing from the
/// same warp until it stalls, then fall back to the oldest ready warp —
/// it preserves intra-warp locality, which matters for the L1D. Loose
/// round-robin (LRR) maximises fairness and interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Loose round-robin across ready warps.
    #[default]
    Lrr,
    /// Greedy-then-oldest: stick with the last issuing warp while it is
    /// ready, else pick the lowest-numbered (oldest) ready warp.
    Gto,
}

use crate::coalesce::{coalesce_into, LineSet};
use crate::convert::narrow;
use crate::l1d::{L1Access, L1Outcome, L1dModel, OutgoingReq};
use crate::warp::{WarpOp, WarpProgram};
use fuse_cache::line::LineAddr;
use fuse_obs::trace::{TraceEvent, TraceKind, TraceRing};

/// Per-SM execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Warp instructions issued.
    pub instructions: u64,
    /// Cycles in which something issued.
    pub issue_cycles: u64,
    /// Cycles with nothing issuable because every candidate warp was
    /// blocked on outstanding memory (the paper's off-chip stall).
    pub mem_stall_cycles: u64,
    /// Cycles lost to structural L1 rejections (MSHR/bank/queue full).
    pub reservation_stall_cycles: u64,
    /// Cycles with no runnable work (warps retired or in compute delay).
    pub idle_cycles: u64,
}

#[derive(Debug, Default)]
struct WarpState {
    outstanding: u32,
    pending: VecDeque<(LineAddr, bool, u32)>, // (line, is_store, pc)
    finished: bool,
}

impl WarpState {
    fn retired(&self) -> bool {
        self.finished && self.outstanding == 0 && self.pending.is_empty()
    }
}

/// One streaming multiprocessor with its private L1D.
pub struct Sm {
    l1: Box<dyn L1dModel>,
    programs: Vec<Box<dyn WarpProgram>>,
    warps: Vec<WarpState>,
    rr: usize,
    stats: SmStats,
    completions: Vec<u16>,
    /// Warps `0..activated` may run; grows as throttled warps retire.
    activated: usize,
    warp_limit: usize,
    policy: SchedulerPolicy,
    last_issued: usize,
    /// Outstanding retirement obligations: one per unfinished warp, plus
    /// one per outstanding load and per pending line request. Zero iff
    /// every warp retired, making [`Sm::done`] O(1) so the engine can
    /// check for drain every cycle.
    live: u64,
    /// The warp holding un-replayed coalesced lines, if any. At most one
    /// warp can hold the LSU: Phase A replays it exclusively until its
    /// lines drain, and only then can Phase B issue another memory op —
    /// so Phase A is a single lookup, not a scan.
    lsu_warp: Option<u16>,
    /// Warps with outstanding loads. With `lsu_warp` this makes the
    /// issue-bubble classification (mem stall vs idle) O(1).
    waiting_warps: usize,
    /// Whether the most recent tick ended in an issue bubble (nothing
    /// issued, no LSU replay). The active-set scheduler's wake
    /// registration (DESIGN.md §3i) reads this: a non-bubble tick means
    /// the SM acted this cycle and `now + 1` is a safe conservative
    /// wake, so the full [`Sm::next_event`] scan is only paid on the
    /// busy→stalled transition cycle.
    bubble: bool,
    /// Activated, unfinished warps with no outstanding loads — the Phase B
    /// candidate pool (busy-on-compute warps included). Zero lets the
    /// issue stage skip the Phase B scan.
    ready_warps: usize,
    /// Finished warps. Every finished warp is retired (it can only finish
    /// with nothing outstanding or pending), so the throttle's running-warp
    /// count is `activated - finished_warps` without a scan.
    finished_warps: usize,
    /// Packed per-warp issue-eligibility horizon: the compute-delay expiry
    /// for a runnable warp, `u64::MAX` for one that is finished or blocked
    /// on outstanding loads. Folds the Phase B candidate test into one
    /// comparison over a dense array instead of three loads from the
    /// pointer-laden [`WarpState`].
    wake_at: Vec<u64>,
    /// Coalescing scratch, owned by the SM for its lifetime so issuing a
    /// memory instruction never allocates. Only Phase B of `issue` uses
    /// it, and its contents never outlive the call.
    coalesce_buf: LineSet,
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("warps", &self.warps.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Sm {
    /// Creates an SM with one program per warp.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn new(l1: Box<dyn L1dModel>, programs: Vec<Box<dyn WarpProgram>>) -> Self {
        let n = programs.len();
        Self::with_warp_limit(l1, programs, n)
    }

    /// Creates an SM that throttles concurrency to `warp_limit` active
    /// warps (CCWS-style); a retired warp releases its slot to the next
    /// resident warp.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty or `warp_limit` is zero.
    pub fn with_warp_limit(
        l1: Box<dyn L1dModel>,
        programs: Vec<Box<dyn WarpProgram>>,
        warp_limit: usize,
    ) -> Self {
        assert!(!programs.is_empty(), "an SM needs at least one warp");
        assert!(warp_limit > 0, "need at least one active warp");
        let n = programs.len();
        Sm {
            l1,
            programs,
            warps: (0..n).map(|_| WarpState::default()).collect(),
            rr: 0,
            stats: SmStats::default(),
            completions: Vec::new(),
            activated: warp_limit.min(n),
            warp_limit,
            policy: SchedulerPolicy::Lrr,
            last_issued: 0,
            live: n as u64,
            lsu_warp: None,
            waiting_warps: 0,
            bubble: false,
            ready_warps: warp_limit.min(n),
            finished_warps: 0,
            wake_at: vec![0; n],
            coalesce_buf: LineSet::new(),
        }
    }

    /// Selects the warp scheduling policy (default: loose round-robin).
    pub fn set_scheduler(&mut self, policy: SchedulerPolicy) {
        self.policy = policy;
    }

    /// The SM's L1D (for configuration-specific metric extraction).
    pub fn l1(&self) -> &dyn L1dModel {
        self.l1.as_ref()
    }

    /// Execution statistics.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// True once every warp retired and no loads are outstanding. O(1):
    /// the `live` counter tracks the warp scan exactly.
    pub fn done(&self) -> bool {
        debug_assert_eq!(
            self.live == 0,
            self.warps.iter().all(|w| w.retired()),
            "live counter diverged from warp state"
        );
        self.live == 0
    }

    /// Moves this cycle's L1 → L2 requests into `out`.
    pub fn drain_outgoing(&mut self, out: &mut Vec<OutgoingReq>) {
        self.l1.drain_outgoing(out);
    }

    /// Delivers a fill response to the L1.
    pub fn push_response(&mut self, now: u64, rsp: crate::l1d::L1Response) {
        self.l1.push_response(now, rsp);
    }

    /// Outstanding L1 misses (pool accounting — see
    /// [`L1dModel::outstanding_misses`]).
    pub fn outstanding_misses(&self) -> usize {
        self.l1.outstanding_misses()
    }

    /// Outstanding retirement obligations: one per unfinished warp plus
    /// one per outstanding load and pending coalesced line. Checker
    /// introspection — zero iff [`Sm::done`].
    pub fn live_obligations(&self) -> u64 {
        self.live
    }

    /// Warps currently blocked on outstanding loads (checker
    /// introspection; drives the mem-stall classification).
    pub fn waiting_warps(&self) -> usize {
        self.waiting_warps
    }

    /// Whether a warp currently holds the LSU with un-replayed coalesced
    /// lines (checker introspection).
    pub fn lsu_held(&self) -> bool {
        self.lsu_warp.is_some()
    }

    /// Whether the most recent tick issued nothing (and held no LSU
    /// replay). Read by the active-set wake registration: after a
    /// non-bubble tick the SM may act again next cycle, so `now + 1` is
    /// registered without a scan; after a bubble the precise
    /// [`Sm::next_event`] answer is worth its O(warps) cost because it
    /// buys a multi-cycle skip.
    pub fn ticked_bubble(&self) -> bool {
        self.bubble
    }

    /// Abandons the L1's in-flight state, returning its pooled buffers
    /// (see [`L1dModel::reset_in_flight`]). Does not make the SM
    /// resumable — for end-of-run pool accounting only.
    pub fn reset_in_flight(&mut self) {
        self.l1.reset_in_flight();
    }

    /// Advances one cycle: L1 pipelines, load wake-ups, then issue.
    pub fn tick(&mut self, now: u64) {
        self.tick_traced(now, None);
    }

    /// [`Sm::tick`] with an optional event tracer. `tracer` carries the
    /// ring and this SM's index (the SM does not know its own position);
    /// Phase B records a coalesce trace point when it issues a memory
    /// instruction.
    pub fn tick_traced(&mut self, now: u64, tracer: Option<(&mut TraceRing, u32)>) {
        self.bubble = false;
        self.l1.tick(now);
        self.completions.clear();
        self.l1.drain_completions(&mut self.completions);
        for i in 0..self.completions.len() {
            let w = self.completions[i] as usize;
            debug_assert!(self.warps[w].outstanding > 0, "spurious completion");
            self.warps[w].outstanding -= 1;
            self.live -= 1;
            if self.warps[w].outstanding == 0 {
                // A warp with loads in flight is never finished, so it
                // rejoins the Phase B pool the moment the last fill lands.
                // Its compute delay expired before the memory op issued,
                // so it is issuable immediately.
                self.waiting_warps -= 1;
                self.ready_warps += 1;
                self.wake_at[w] = now;
            }
        }
        // Throttling: release slots of retired warps to waiting ones.
        if self.activated < self.warps.len() {
            let running = self.activated - self.finished_warps;
            let free = self.warp_limit.saturating_sub(running);
            let grown = (self.activated + free).min(self.warps.len());
            // Newly activated warps are fresh: unfinished, nothing in
            // flight — straight into the candidate pool.
            self.ready_warps += grown - self.activated;
            self.activated = grown;
        }
        self.issue(now, tracer);
    }

    /// Earliest cycle at or after `now` at which this SM could do
    /// anything observable: an L1 event, a warp retrying its coalesced
    /// access (every cycle — even rejections mutate L1 statistics), or a
    /// warp becoming issuable when its compute delay expires. Returns
    /// `None` when every warp is permanently blocked on external input
    /// (outstanding loads) or retired.
    ///
    /// The scan covers the *would-be* activation window: `tick` expands
    /// `activated` before issuing, so a warp whose slot frees this cycle
    /// (because an earlier warp retired last cycle) can issue immediately
    /// and must count as an event now.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.lsu_warp.is_some() {
            return Some(now); // Phase A retries every cycle
        }
        let mut earliest = match self.l1.next_event(now) {
            Some(t) if t <= now => return Some(now),
            e => e,
        };
        let n = if self.activated < self.warps.len() {
            let running = self.activated - self.finished_warps;
            (self.activated + self.warp_limit.saturating_sub(running)).min(self.warps.len())
        } else {
            self.activated
        };
        for &t in &self.wake_at[..n] {
            if t <= now {
                return Some(now); // issuable (or retiring) this cycle
            }
            if t != u64::MAX {
                earliest = Some(earliest.map_or(t, |c: u64| c.min(t)));
            }
            // MAX: finished, or blocked until a completion (an L1 event).
        }
        earliest
    }

    /// Bulk-credits `span` skipped cycles of stall classification, exactly
    /// as `span` issue-less ticks would have: the bubble is a memory stall
    /// while any warp waits on loads (or holds unreplayed coalesced
    /// lines), idle otherwise. Warp state cannot change inside a skipped
    /// span (every change is an event), so one classification covers it.
    pub fn advance_idle(&mut self, span: u64) {
        if self.waiting_warps > 0 || self.lsu_warp.is_some() {
            self.stats.mem_stall_cycles += span;
        } else {
            self.stats.idle_cycles += span;
        }
    }

    fn issue(&mut self, now: u64, tracer: Option<(&mut TraceRing, u32)>) {
        let n = self.activated;
        // Phase A: the warp still holding the LSU finishes its coalesced
        // access first.
        if let Some(wi) = self.lsu_warp {
            let wi = wi as usize;
            if self.issue_pending(now, wi) {
                self.stats.issue_cycles += 1;
            } else {
                self.stats.reservation_stall_cycles += 1;
            }
            return;
        }
        // Phase B: fetch a new instruction from a ready warp, in
        // policy-defined preference order. An empty candidate pool (every
        // warp finished or blocked on memory) skips the scan outright.
        for off in 0..if self.ready_warps > 0 { n } else { 0 } {
            let wi = match self.policy {
                SchedulerPolicy::Lrr => (self.rr + off) % n,
                // GTO: the greedy warp first, then oldest-first over the
                // rest (indices 0..n-1 with the greedy slot spliced out).
                SchedulerPolicy::Gto => {
                    let greedy = self.last_issued.min(n - 1);
                    if off == 0 {
                        greedy
                    } else if off - 1 < greedy {
                        off - 1
                    } else {
                        off
                    }
                }
            };
            if self.wake_at[wi] > now {
                continue; // finished, blocked on memory, or in compute delay
            }
            match self.programs[wi].next_op() {
                None => {
                    self.warps[wi].finished = true;
                    self.live -= 1;
                    self.ready_warps -= 1;
                    self.finished_warps += 1;
                    self.wake_at[wi] = u64::MAX;
                    continue; // retiring is free; keep scanning
                }
                Some(WarpOp::Compute { cycles }) => {
                    self.stats.instructions += 1;
                    self.stats.issue_cycles += 1;
                    self.wake_at[wi] = now + cycles.max(1) as u64;
                    self.rr = (wi + 1) % n;
                    self.last_issued = wi;
                    return;
                }
                Some(WarpOp::Mem(op)) => {
                    self.stats.instructions += 1;
                    self.stats.issue_cycles += 1;
                    coalesce_into(&op, &mut self.coalesce_buf);
                    if let Some((ring, sm_idx)) = tracer {
                        ring.record(TraceEvent {
                            t: now,
                            dur: 0,
                            line: self.coalesce_buf.as_slice().first().map_or(0, |l| l.0),
                            kind: TraceKind::Coalesce,
                            track: sm_idx,
                            aux: u32::from(narrow::<u16, _>(wi))
                                | (u32::from(narrow::<u16, _>(self.coalesce_buf.len())) << 16),
                        });
                    }
                    self.live += self.coalesce_buf.len() as u64;
                    let w = &mut self.warps[wi];
                    debug_assert!(w.pending.is_empty(), "Phase B warp holds the LSU");
                    for &line in self.coalesce_buf.as_slice() {
                        w.pending.push_back((line, op.is_store, op.pc));
                    }
                    self.lsu_warp = Some(narrow(wi));
                    self.issue_pending(now, wi);
                    self.rr = (wi + 1) % n;
                    self.last_issued = wi;
                    return;
                }
            }
        }
        // Nothing issued this cycle: classify the bubble.
        self.bubble = true;
        if self.waiting_warps > 0 || self.lsu_warp.is_some() {
            self.stats.mem_stall_cycles += 1;
        } else {
            self.stats.idle_cycles += 1;
        }
    }

    /// Issues up to [`L1_PORT_WIDTH`] of warp `wi`'s pending line requests
    /// this cycle; returns whether any made progress.
    fn issue_pending(&mut self, now: u64, wi: usize) -> bool {
        let had_outstanding = self.warps[wi].outstanding > 0;
        let mut progress = false;
        let mut budget = L1_PORT_WIDTH;
        while let Some(&(line, is_store, pc)) = self.warps[wi].pending.front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let outcome = self.l1.access(
                now,
                L1Access {
                    warp: narrow(wi),
                    pc,
                    line,
                    is_store,
                },
            );
            match outcome {
                L1Outcome::HitNow | L1Outcome::StoreAccepted => {
                    self.warps[wi].pending.pop_front();
                    self.live -= 1;
                    progress = true;
                }
                L1Outcome::Pending => {
                    // One pending line becomes one outstanding load: the
                    // warp's retirement obligation count is unchanged.
                    self.warps[wi].pending.pop_front();
                    self.warps[wi].outstanding += 1;
                    progress = true;
                }
                L1Outcome::ReservationFail => break,
            }
        }
        let w = &self.warps[wi];
        if w.pending.is_empty() {
            self.lsu_warp = None; // LSU released
        }
        if !had_outstanding && w.outstanding > 0 {
            self.waiting_warps += 1;
            self.ready_warps -= 1; // blocked on memory until the fills land
            self.wake_at[wi] = u64::MAX;
        }
        progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l1d::IdealL1;
    use crate::warp::{MemOp, StreamProgram};

    fn mem(pc: u32, base: u64, store: bool) -> WarpOp {
        WarpOp::Mem(MemOp::strided(pc, store, base, 4, 32))
    }

    fn run_sm(mut sm: Sm, max: u64) -> (Sm, u64) {
        let mut cycles = 0;
        for now in 0..max {
            sm.tick(now);
            // Feed fills back instantly (memory modelled elsewhere).
            let mut out = Vec::new();
            sm.drain_outgoing(&mut out);
            for r in out {
                if r.kind.expects_response() {
                    sm.push_response(
                        now,
                        crate::l1d::L1Response {
                            id: r.id,
                            line: r.line,
                        },
                    );
                }
            }
            cycles = now + 1;
            if sm.done() {
                break;
            }
        }
        (sm, cycles)
    }

    #[test]
    fn single_warp_executes_everything() {
        let prog = StreamProgram::new(vec![
            WarpOp::Compute { cycles: 1 },
            mem(0x10, 0x1000, false),
            mem(0x14, 0x1000, true),
            WarpOp::Compute { cycles: 3 },
        ]);
        let sm = Sm::new(Box::new(IdealL1::new()), vec![Box::new(prog)]);
        let (sm, cycles) = run_sm(sm, 1000);
        assert!(sm.done());
        assert_eq!(sm.stats().instructions, 4);
        assert!(cycles >= 5, "compute delay must cost cycles");
    }

    #[test]
    fn warp_blocks_on_load_until_fill() {
        // No fills delivered: the warp must stay blocked.
        let prog = StreamProgram::new(vec![mem(0, 0, false), WarpOp::Compute { cycles: 1 }]);
        let mut sm = Sm::new(Box::new(IdealL1::new()), vec![Box::new(prog)]);
        for now in 0..50 {
            sm.tick(now);
        }
        assert!(!sm.done());
        assert_eq!(
            sm.stats().instructions,
            1,
            "second instruction must not issue"
        );
        assert!(sm.stats().mem_stall_cycles > 40);
    }

    #[test]
    fn stores_do_not_block() {
        let prog = StreamProgram::new(vec![mem(0, 0, true), WarpOp::Compute { cycles: 1 }]);
        let mut sm = Sm::new(Box::new(IdealL1::new()), vec![Box::new(prog)]);
        for now in 0..10 {
            sm.tick(now);
        }
        assert_eq!(sm.stats().instructions, 2, "store is fire-and-forget");
    }

    #[test]
    fn round_robin_interleaves_warps() {
        let mk = || {
            Box::new(StreamProgram::new(vec![
                WarpOp::Compute { cycles: 1 },
                WarpOp::Compute { cycles: 1 },
            ])) as Box<dyn WarpProgram>
        };
        let sm = Sm::new(Box::new(IdealL1::new()), vec![mk(), mk(), mk()]);
        let (sm, cycles) = run_sm(sm, 100);
        assert!(sm.done());
        assert_eq!(sm.stats().instructions, 6);
        // 6 instructions at 1 IPC: 6 issue cycles (+1 drain cycle).
        assert!(cycles <= 8, "RR should keep the pipe full, took {cycles}");
    }

    #[test]
    fn irregular_access_issues_many_lines() {
        // 32 lanes at 128 B stride: 32 distinct lines from one instruction.
        let op = WarpOp::Mem(MemOp::strided(0, false, 0, 128, 32));
        let prog = StreamProgram::new(vec![op]);
        let sm = Sm::new(Box::new(IdealL1::new()), vec![Box::new(prog)]);
        let (sm, _) = run_sm(sm, 1000);
        assert!(sm.done());
        let stats = sm.l1().stats();
        assert_eq!(stats.misses, 32);
    }

    #[test]
    fn next_event_skips_compute_delays_and_blocks_on_loads() {
        let prog = StreamProgram::new(vec![
            WarpOp::Compute { cycles: 10 },
            mem(0x10, 0x1000, false),
        ]);
        let mut sm = Sm::new(Box::new(IdealL1::new()), vec![Box::new(prog)]);
        sm.tick(0); // issues the compute; busy until 10
        assert_eq!(sm.next_event(1), Some(10), "compute expiry is the event");
        for now in 1..10 {
            sm.tick(now); // dead cycles: nothing issuable
        }
        let idle_before = sm.stats().idle_cycles;
        assert_eq!(idle_before, 9, "cycles 1..10 are idle bubbles");
        sm.tick(10); // issues the load; miss goes to the L1's buffer
        assert_eq!(
            sm.next_event(11),
            Some(11),
            "undrained outgoing request pins the SM"
        );
        let mut out = Vec::new();
        sm.drain_outgoing(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            sm.next_event(11),
            None,
            "warp blocked on an outstanding load has no intrinsic event"
        );
    }

    #[test]
    fn advance_idle_matches_ticked_classification() {
        // One warp blocked on a load: dead cycles classify as mem stall.
        let mk = || {
            let mut sm = Sm::new(
                Box::new(IdealL1::new()),
                vec![Box::new(StreamProgram::new(vec![mem(0, 0, false)]))],
            );
            sm.tick(0);
            let mut out = Vec::new();
            sm.drain_outgoing(&mut out);
            sm
        };
        let mut ticked = mk();
        let mut skipped = mk();
        for now in 1..21 {
            ticked.tick(now);
        }
        skipped.advance_idle(20);
        assert_eq!(ticked.stats(), skipped.stats());
    }

    #[test]
    fn next_event_sees_warps_the_throttle_will_activate() {
        // Warp 0 retires at tick 0; the throttle slot frees, so warp 1 —
        // outside the *current* activation window — can issue next tick.
        let p0 = StreamProgram::new(vec![]);
        let p1 = StreamProgram::new(vec![WarpOp::Compute { cycles: 1 }]);
        let mut sm = Sm::with_warp_limit(
            Box::new(IdealL1::new()),
            vec![Box::new(p0), Box::new(p1)],
            1,
        );
        sm.tick(0); // warp 0 retires during the issue scan
        assert_eq!(
            sm.next_event(1),
            Some(1),
            "newly activatable warp is an immediate event"
        );
        sm.tick(1);
        assert_eq!(sm.stats().instructions, 1);
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn empty_sm_rejected() {
        let _ = Sm::new(Box::new(IdealL1::new()), vec![]);
    }

    #[test]
    fn gto_scheduler_sticks_with_the_greedy_warp() {
        // Two warps of computes: GTO must run warp 0 to completion before
        // touching warp 1 (all its ops are back-to-back ready).
        let mk = |n: usize| {
            Box::new(StreamProgram::new(vec![WarpOp::Compute { cycles: 1 }; n]))
                as Box<dyn WarpProgram>
        };
        let mut sm = Sm::new(Box::new(IdealL1::new()), vec![mk(3), mk(3)]);
        sm.set_scheduler(SchedulerPolicy::Gto);
        for now in 0..20 {
            sm.tick(now);
            if sm.done() {
                break;
            }
        }
        assert!(sm.done());
        assert_eq!(sm.stats().instructions, 6);
    }

    #[test]
    fn gto_and_lrr_retire_identical_work() {
        let run = |policy: SchedulerPolicy| {
            let mk = || {
                Box::new(StreamProgram::new(vec![
                    mem(0x10, 0x100, false),
                    WarpOp::Compute { cycles: 2 },
                    mem(0x14, 0x2000, true),
                ])) as Box<dyn WarpProgram>
            };
            let mut sm = Sm::new(Box::new(IdealL1::new()), vec![mk(), mk(), mk()]);
            sm.set_scheduler(policy);
            for now in 0..500 {
                sm.tick(now);
                let mut out = Vec::new();
                sm.drain_outgoing(&mut out);
                for r in out {
                    if r.kind.expects_response() {
                        sm.push_response(
                            now,
                            crate::l1d::L1Response {
                                id: r.id,
                                line: r.line,
                            },
                        );
                    }
                }
                if sm.done() {
                    break;
                }
            }
            assert!(sm.done());
            sm.stats().instructions
        };
        assert_eq!(run(SchedulerPolicy::Lrr), run(SchedulerPolicy::Gto));
    }

    #[test]
    fn warp_throttling_limits_concurrency_but_retires_everything() {
        // 4 warps, limit 1: they must run one after another, so two
        // 1-cycle computes per warp take ~8 issue cycles instead of 8
        // interleaved at full width — but everything still retires.
        let mk = || {
            Box::new(StreamProgram::new(vec![
                WarpOp::Compute { cycles: 1 },
                WarpOp::Compute { cycles: 1 },
            ])) as Box<dyn WarpProgram>
        };
        let mut sm = Sm::with_warp_limit(Box::new(IdealL1::new()), vec![mk(), mk(), mk(), mk()], 1);
        for now in 0..100 {
            sm.tick(now);
            if sm.done() {
                break;
            }
        }
        assert!(sm.done(), "throttled warps must still all retire");
        assert_eq!(sm.stats().instructions, 8);
    }

    #[test]
    fn throttled_sm_blocks_later_warps_until_earlier_retire() {
        // Warp 0 blocks forever on an unanswered load; warp 1 must never
        // start under a limit of 1.
        let p0 = StreamProgram::new(vec![mem(0, 0, false)]);
        let p1 = StreamProgram::new(vec![WarpOp::Compute { cycles: 1 }]);
        let mut sm = Sm::with_warp_limit(
            Box::new(IdealL1::new()),
            vec![Box::new(p0), Box::new(p1)],
            1,
        );
        for now in 0..50 {
            sm.tick(now); // no fills delivered: warp 0 stays blocked
        }
        assert_eq!(sm.stats().instructions, 1, "warp 1 must be throttled out");
    }
}
