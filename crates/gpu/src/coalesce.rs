//! Memory-access coalescing.
//!
//! A warp's 32 lane addresses collapse into the minimal set of distinct
//! 128 B line requests, first-touch order preserved — the standard CUDA
//! global-memory coalescing rule (§III-A: "executing a warp requires
//! bringing in/out 128 B data"). Regular kernels produce one line per warp
//! access; irregular kernels can produce up to 32.

use crate::warp::MemOp;
use fuse_cache::line::LineAddr;

/// Coalesces a warp memory operation into unique line addresses, in
/// first-lane order.
///
/// # Examples
///
/// ```
/// use fuse_gpu::coalesce::coalesce;
/// use fuse_gpu::warp::MemOp;
///
/// // 32 consecutive 4 B elements: exactly one 128 B line.
/// let op = MemOp::strided(0, false, 0x1000, 4, 32);
/// assert_eq!(coalesce(&op).len(), 1);
///
/// // A scatter over three distant addresses: three lines.
/// let op = MemOp::scattered(0, false, &[0x0, 0x10000, 0x20000]);
/// assert_eq!(coalesce(&op).len(), 3);
/// ```
pub fn coalesce(op: &MemOp) -> Vec<LineAddr> {
    let mut lines: Vec<LineAddr> = Vec::with_capacity(4);
    for &addr in op.active_lanes() {
        let line = LineAddr::from_byte_addr(addr);
        if !lines.contains(&line) {
            lines.push(line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_warp_access_is_one_line() {
        let op = MemOp::strided(0, false, 0x2000, 4, 32);
        assert_eq!(coalesce(&op), vec![LineAddr::from_byte_addr(0x2000)]);
    }

    #[test]
    fn misaligned_access_straddles_two_lines() {
        let op = MemOp::strided(0, false, 0x2040, 4, 32);
        let lines = coalesce(&op);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], LineAddr::from_byte_addr(0x2040));
        assert_eq!(lines[1], LineAddr::from_byte_addr(0x2080));
    }

    #[test]
    fn large_stride_defeats_coalescing() {
        // 128 B stride: every lane its own line (column-major matrix walk).
        let op = MemOp::strided(0, false, 0, 128, 32);
        assert_eq!(coalesce(&op).len(), 32);
    }

    #[test]
    fn duplicate_lane_addresses_fold() {
        let op = MemOp::scattered(0, false, &[100, 101, 102, 100]);
        assert_eq!(coalesce(&op).len(), 1);
    }

    #[test]
    fn order_is_first_touch() {
        let op = MemOp::scattered(0, false, &[0x8000, 0x0, 0x8000, 0x4000]);
        let lines = coalesce(&op);
        assert_eq!(
            lines,
            vec![
                LineAddr::from_byte_addr(0x8000),
                LineAddr::from_byte_addr(0x0),
                LineAddr::from_byte_addr(0x4000)
            ]
        );
    }
}
