//! Memory-access coalescing.
//!
//! A warp's 32 lane addresses collapse into the minimal set of distinct
//! 128 B line requests, first-touch order preserved — the standard CUDA
//! global-memory coalescing rule (§III-A: "executing a warp requires
//! bringing in/out 128 B data"). Regular kernels produce one line per warp
//! access; irregular kernels can produce up to 32.
//!
//! The hot entry point is [`coalesce_into`]: it fills a caller-owned
//! [`LineSet`] — a fixed 32-slot inline array — so coalescing a memory
//! instruction never touches the heap. The SM keeps one `LineSet` as a
//! scratch buffer for its whole lifetime (see `Sm::issue`).

use crate::warp::MemOp;
use fuse_cache::line::LineAddr;

/// The distinct lines of one coalesced warp access, stored inline.
///
/// A warp has 32 lanes, so 32 slots always suffice; `insert` keeps
/// first-touch order and deduplicates by scanning newest-first — lanes
/// are spatially correlated, so a duplicate is almost always the line the
/// previous lane touched, found in one comparison (unlike
/// `Vec::contains`, which re-scans from the front every time).
///
/// # Examples
///
/// ```
/// use fuse_gpu::coalesce::LineSet;
/// use fuse_cache::line::LineAddr;
///
/// let mut set = LineSet::new();
/// assert!(set.insert(LineAddr(3)));
/// assert!(!set.insert(LineAddr(3)), "duplicates fold");
/// assert_eq!(set.as_slice(), &[LineAddr(3)]);
/// ```
#[derive(Debug, Clone)]
pub struct LineSet {
    lines: [LineAddr; 32],
    len: u8,
}

impl LineSet {
    /// An empty set.
    pub const fn new() -> Self {
        LineSet {
            lines: [LineAddr(0); 32],
            len: 0,
        }
    }

    /// Empties the set (the backing storage is inline; nothing to free).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Number of distinct lines held.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no line has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lines in first-touch order.
    pub fn as_slice(&self) -> &[LineAddr] {
        &self.lines[..self.len as usize]
    }

    /// Inserts `line` unless already present; returns whether it was new.
    ///
    /// # Panics
    ///
    /// Panics if the set already holds 32 lines and `line` is new (cannot
    /// happen for input derived from one 32-lane warp).
    pub fn insert(&mut self, line: LineAddr) -> bool {
        let n = self.len as usize;
        // Newest-first: consecutive lanes usually share a line.
        for &held in self.lines[..n].iter().rev() {
            if held == line {
                return false;
            }
        }
        self.lines[n] = line;
        self.len += 1;
        true
    }
}

impl Default for LineSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Coalesces a warp memory operation into `out` (cleared first): unique
/// line addresses in first-lane order, no heap allocation.
///
/// # Examples
///
/// ```
/// use fuse_gpu::coalesce::{coalesce_into, LineSet};
/// use fuse_gpu::warp::MemOp;
///
/// let mut set = LineSet::new();
/// // 32 consecutive 4 B elements: exactly one 128 B line.
/// coalesce_into(&MemOp::strided(0, false, 0x1000, 4, 32), &mut set);
/// assert_eq!(set.len(), 1);
/// ```
pub fn coalesce_into(op: &MemOp, out: &mut LineSet) {
    out.clear();
    for &addr in op.active_lanes() {
        out.insert(LineAddr::from_byte_addr(addr));
    }
}

/// Allocating convenience wrapper over [`coalesce_into`] for tests and
/// one-shot callers; the engine's hot path uses the scratch-buffer form.
///
/// # Examples
///
/// ```
/// use fuse_gpu::coalesce::coalesce;
/// use fuse_gpu::warp::MemOp;
///
/// // A scatter over three distant addresses: three lines.
/// let op = MemOp::scattered(0, false, &[0x0, 0x10000, 0x20000]);
/// assert_eq!(coalesce(&op).len(), 3);
/// ```
pub fn coalesce(op: &MemOp) -> Vec<LineAddr> {
    let mut set = LineSet::new();
    coalesce_into(op, &mut set);
    set.as_slice().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_warp_access_is_one_line() {
        let op = MemOp::strided(0, false, 0x2000, 4, 32);
        assert_eq!(coalesce(&op), vec![LineAddr::from_byte_addr(0x2000)]);
    }

    #[test]
    fn misaligned_access_straddles_two_lines() {
        let op = MemOp::strided(0, false, 0x2040, 4, 32);
        let lines = coalesce(&op);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], LineAddr::from_byte_addr(0x2040));
        assert_eq!(lines[1], LineAddr::from_byte_addr(0x2080));
    }

    #[test]
    fn large_stride_defeats_coalescing() {
        // 128 B stride: every lane its own line (column-major matrix walk).
        let op = MemOp::strided(0, false, 0, 128, 32);
        assert_eq!(coalesce(&op).len(), 32);
    }

    #[test]
    fn duplicate_lane_addresses_fold() {
        let op = MemOp::scattered(0, false, &[100, 101, 102, 100]);
        assert_eq!(coalesce(&op).len(), 1);
    }

    #[test]
    fn order_is_first_touch() {
        let op = MemOp::scattered(0, false, &[0x8000, 0x0, 0x8000, 0x4000]);
        let lines = coalesce(&op);
        assert_eq!(
            lines,
            vec![
                LineAddr::from_byte_addr(0x8000),
                LineAddr::from_byte_addr(0x0),
                LineAddr::from_byte_addr(0x4000)
            ]
        );
    }

    #[test]
    fn line_set_holds_all_32_distinct_lines() {
        let mut set = LineSet::new();
        for i in 0..32u64 {
            assert!(set.insert(LineAddr(i * 100)));
        }
        assert_eq!(set.len(), 32);
        for i in 0..32u64 {
            assert!(!set.insert(LineAddr(i * 100)), "rescan must find {i}");
        }
        assert_eq!(set.as_slice().len(), 32);
    }

    #[test]
    fn line_set_reuse_after_clear() {
        let mut set = LineSet::new();
        coalesce_into(&MemOp::strided(0, false, 0, 128, 32), &mut set);
        assert_eq!(set.len(), 32);
        coalesce_into(&MemOp::strided(0, false, 0x1000, 4, 32), &mut set);
        assert_eq!(set.len(), 1, "coalesce_into must clear stale lines");
    }

    #[test]
    fn line_set_matches_wrapper_on_scatters() {
        let addrs: Vec<u64> = (0..32u64).map(|i| (i * 7919) % 4096 * 64).collect();
        let op = MemOp::scattered(0, false, &addrs);
        let mut set = LineSet::new();
        coalesce_into(&op, &mut set);
        assert_eq!(set.as_slice(), coalesce(&op).as_slice());
    }
}
