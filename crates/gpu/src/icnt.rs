//! Interconnection network between the SMs and the shared L2 slices.
//!
//! The paper configures a 27-node butterfly (15 SMs + 12 L2 banks). We
//! abstract the topology to a pipelined fabric per direction with a fixed
//! traversal latency and a finite aggregate injection bandwidth in
//! flits/cycle; queueing at the injection port provides the contention the
//! paper measures (Fig. 1a's "Network" share). Every packet leaving the L1
//! through the request network is one of the paper's *outgoing memory
//! references* — the quantity FUSE reduces by 32%.

use std::collections::VecDeque;

use crate::l1d::OutgoingKind;
use fuse_cache::line::LineAddr;

/// One packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// System-wide request id (traces latency decomposition).
    pub gid: u64,
    /// Source/destination SM.
    pub sm: usize,
    /// Destination/source L2 bank.
    pub bank: usize,
    /// Line the packet concerns.
    pub line: LineAddr,
    /// Request class (responses inherit the class of their request).
    pub kind: OutgoingKind,
    /// Size in 32 B flits (1 for a read header, 5 for 128 B + header).
    pub flits: u32,
}

impl Packet {
    /// Flit size of a request of `kind` (header-only reads, 128 B + header
    /// for data-carrying packets).
    pub fn request_flits(kind: OutgoingKind) -> u32 {
        match kind {
            OutgoingKind::FillRead | OutgoingKind::BypassRead => 1,
            OutgoingKind::WriteThrough => 5,
        }
    }

    /// Flit size of the response to a read (data always comes back as a
    /// full line).
    pub const RESPONSE_FLITS: u32 = 5;
}

/// Aggregate traffic counters for one direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcntStats {
    /// Packets injected.
    pub packets: u64,
    /// Flits moved.
    pub flits: u64,
    /// Cycle-sum of the injection-queue depth (for average occupancy).
    pub queue_depth_sum: u64,
    /// Cycles ticked.
    pub cycles: u64,
}

impl IcntStats {
    /// Mean injection-queue depth per cycle.
    pub fn avg_queue_depth(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.cycles as f64
        }
    }
}

/// One direction of the fabric.
///
/// # Examples
///
/// ```
/// use fuse_gpu::icnt::{Interconnect, Packet};
/// use fuse_gpu::l1d::OutgoingKind;
/// use fuse_cache::line::LineAddr;
///
/// let mut net = Interconnect::new(10, 16);
/// net.push(Packet { gid: 0, sm: 0, bank: 0, line: LineAddr(1),
///                   kind: OutgoingKind::FillRead, flits: 1 });
/// let mut delivered = Vec::new();
/// for now in 0..12 {
///     delivered.extend(net.tick(now));
/// }
/// assert_eq!(delivered.len(), 1);
/// ```
#[derive(Debug)]
pub struct Interconnect {
    latency: u32,
    flits_per_cycle: u32,
    inject: VecDeque<Packet>,
    in_flight: VecDeque<(u64, Packet)>, // (deliver_at, packet), FIFO by time
    stats: IcntStats,
}

impl Interconnect {
    /// Creates a fabric direction with `latency` cycles traversal and
    /// `flits_per_cycle` aggregate injection bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `flits_per_cycle` is zero.
    pub fn new(latency: u32, flits_per_cycle: u32) -> Self {
        assert!(flits_per_cycle > 0, "bandwidth must be non-zero");
        Interconnect {
            latency,
            flits_per_cycle,
            inject: VecDeque::new(),
            in_flight: VecDeque::new(),
            stats: IcntStats::default(),
        }
    }

    /// Queues a packet for injection (SM/L2-side buffering is unbounded;
    /// contention shows up as queueing delay, not rejection).
    pub fn push(&mut self, packet: Packet) {
        self.stats.packets += 1;
        self.stats.flits += packet.flits as u64;
        self.inject.push_back(packet);
    }

    /// Advances one cycle: injects as many whole packets as the bandwidth
    /// allows and returns everything that completed traversal.
    ///
    /// Convenience wrapper over [`Interconnect::tick_into`] for tests and
    /// examples; the engine's hot path recycles its own buffer instead.
    pub fn tick(&mut self, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Advances one cycle, appending every packet that completed traversal
    /// to the caller-owned `out`.
    pub fn tick_into(&mut self, now: u64, out: &mut Vec<Packet>) {
        self.stats.cycles += 1;
        self.stats.queue_depth_sum += self.inject.len() as u64;
        let mut budget = self.flits_per_cycle;
        while let Some(front) = self.inject.front() {
            if front.flits > budget {
                break; // head-of-line packet waits for a fresh cycle
            }
            budget -= front.flits;
            let p = self.inject.pop_front().expect("front exists");
            self.in_flight.push_back((now + self.latency as u64, p));
        }
        while let Some(&(at, _)) = self.in_flight.front() {
            if at > now {
                break;
            }
            out.push(self.in_flight.pop_front().expect("front exists").1);
        }
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.inject.is_empty() && self.in_flight.is_empty()
    }

    /// Packets accepted but not yet delivered, both waiting to inject and
    /// traversing the network (checker introspection: together with the
    /// trace slab and L2 queues this closes the in-flight books).
    pub fn in_flight_packets(&self) -> usize {
        self.inject.len() + self.in_flight.len()
    }

    /// Earliest cycle at or after `now` whose tick does observable work:
    /// `now` while the injection queue is non-empty (injection is
    /// attempted every cycle and the queue-depth statistic accrues), else
    /// the delivery time at the head of the in-flight FIFO (packets are
    /// ordered by insertion, and the latency is constant, so the head is
    /// the minimum). `None` when fully idle.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if !self.inject.is_empty() {
            return Some(now);
        }
        self.in_flight.front().map(|&(at, _)| at.max(now))
    }

    /// Bulk-credits `span` skipped cycles of per-cycle statistics, exactly
    /// as `span` calls to [`Interconnect::tick_into`] with an empty
    /// injection queue and no due delivery would have. Callers must only
    /// skip cycles strictly before [`Interconnect::next_event`], which
    /// implies the injection queue is empty (so the queue-depth sum credit
    /// is zero).
    pub fn advance_idle(&mut self, span: u64) {
        debug_assert!(
            self.inject.is_empty(),
            "cycle-skipped across a non-empty injection queue"
        );
        self.stats.cycles += span;
    }

    /// Traffic counters.
    pub fn stats(&self) -> IcntStats {
        self.stats
    }

    /// Drops every queued and in-flight packet (capacity is retained).
    /// Statistics already accrued are kept.
    pub fn reset_in_flight(&mut self) {
        self.inject.clear();
        self.in_flight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(gid: u64, flits: u32) -> Packet {
        Packet {
            gid,
            sm: 0,
            bank: 0,
            line: LineAddr(gid),
            kind: OutgoingKind::FillRead,
            flits,
        }
    }

    #[test]
    fn delivery_after_latency() {
        let mut net = Interconnect::new(5, 16);
        net.push(pkt(1, 1));
        for now in 0..5 {
            assert!(net.tick(now).is_empty(), "too early at {now}");
        }
        let d = net.tick(5);
        assert_eq!(d.len(), 1);
        assert!(net.is_idle());
    }

    #[test]
    fn bandwidth_limits_injection() {
        let mut net = Interconnect::new(0, 5);
        // Three 5-flit packets: one per cycle.
        for g in 0..3 {
            net.push(pkt(g, 5));
        }
        assert_eq!(net.tick(0).len(), 1);
        assert_eq!(net.tick(1).len(), 1);
        assert_eq!(net.tick(2).len(), 1);
    }

    #[test]
    fn small_packets_share_a_cycle() {
        let mut net = Interconnect::new(0, 4);
        for g in 0..4 {
            net.push(pkt(g, 1));
        }
        assert_eq!(net.tick(0).len(), 4);
    }

    #[test]
    fn order_is_preserved() {
        let mut net = Interconnect::new(2, 16);
        net.push(pkt(1, 1));
        net.push(pkt(2, 1));
        let mut seen = Vec::new();
        for now in 0..5 {
            seen.extend(net.tick(now).into_iter().map(|p| p.gid));
        }
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = Interconnect::new(1, 16);
        net.push(pkt(1, 5));
        net.push(pkt(2, 1));
        let _ = net.tick(0);
        let s = net.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.flits, 6);
        assert!(s.avg_queue_depth() >= 0.0);
    }

    #[test]
    fn next_event_tracks_queue_and_flight() {
        let mut net = Interconnect::new(5, 16);
        assert_eq!(net.next_event(3), None, "idle fabric has no events");
        net.push(pkt(1, 1));
        assert_eq!(net.next_event(3), Some(3), "queued packet injects now");
        let _ = net.tick(3); // injected; delivers at 8
        assert_eq!(net.next_event(4), Some(8));
        let _ = net.tick(8);
        assert_eq!(net.next_event(9), None);
    }

    #[test]
    fn advance_idle_matches_ticking_dead_cycles() {
        let mut a = Interconnect::new(10, 16);
        let mut b = Interconnect::new(10, 16);
        a.push(pkt(1, 1));
        b.push(pkt(1, 1));
        let _ = a.tick(0);
        let _ = b.tick(0);
        // Cycles 1..=9 are dead: a ticks them, b bulk-credits them.
        for now in 1..10 {
            assert!(a.tick(now).is_empty());
        }
        b.advance_idle(9);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.tick(10).len(), 1);
        assert_eq!(b.tick(10).len(), 1);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn request_flit_sizes() {
        assert_eq!(Packet::request_flits(OutgoingKind::FillRead), 1);
        assert_eq!(Packet::request_flits(OutgoingKind::BypassRead), 1);
        assert_eq!(Packet::request_flits(OutgoingKind::WriteThrough), 5);
    }
}
