//! GPU system configuration and the paper's two machine presets.

use crate::sm::SchedulerPolicy;
use fuse_mem::dram::DramTiming;

/// Whole-GPU configuration (Table I, "General Configuration" column).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors (paper: 15 Fermi-like, 84 Volta-like).
    pub num_sms: usize,
    /// Resident warps per SM (paper: 48).
    pub warps_per_sm: usize,
    /// Threads per warp (32 — fixed by the CUDA model).
    pub threads_per_warp: usize,
    /// L1 MSHR entries per SM.
    pub mshr_entries: usize,
    /// Merged requesters per MSHR entry.
    pub mshr_targets: usize,
    /// L2 slices (paper: 12, two per DRAM channel).
    pub l2_banks: usize,
    /// Sets per L2 slice (786 KB / 12 slices / 8 ways / 128 B = 64).
    pub l2_sets: usize,
    /// L2 associativity (paper: 8).
    pub l2_ways: usize,
    /// L2 service latency in SM cycles (tag + ECC + data; the paper calls
    /// L2 ~60× slower than L1 including the interconnect round trip).
    pub l2_latency: u32,
    /// L2-side MSHR entries per slice.
    pub l2_mshr_entries: usize,
    /// One-way interconnect pipeline latency, SM cycles.
    pub icnt_latency: u32,
    /// Aggregate interconnect injection bandwidth, flits/cycle/direction.
    pub icnt_flits_per_cycle: u32,
    /// DRAM channels (paper: 6).
    pub dram_channels: usize,
    /// DRAM timing (Table I: tCL/tRCD/tRAS = 12/12/28).
    pub dram: DramTiming,
    /// Core clock in GHz (for energy conversion only).
    pub clock_ghz: f64,
    /// Warp scheduling policy (GPGPU-Sim default GTO, or loose RR).
    pub scheduler: SchedulerPolicy,
    /// Warp throttling à la CCWS [Rogers et al., MICRO 2012] — at most this
    /// many warps run concurrently per SM; retired warps release slots.
    /// `None` runs all resident warps (the paper's FUSE position: keep
    /// thread-level parallelism maximal and fix the cache instead).
    pub active_warp_limit: Option<usize>,
}

impl GpuConfig {
    /// The paper's primary machine: a GTX480/Fermi-class GPU with 15 SMs,
    /// 48 warps/SM, a 27-node butterfly interconnect, 12 L2 banks of 64 KB
    /// and 6 GDDR5 channels.
    pub fn gtx480() -> Self {
        GpuConfig {
            num_sms: 15,
            warps_per_sm: 48,
            threads_per_warp: 32,
            mshr_entries: 32,
            mshr_targets: 8,
            l2_banks: 12,
            l2_sets: 64,
            l2_ways: 8,
            l2_latency: 30,
            l2_mshr_entries: 32,
            icnt_latency: 40,
            icnt_flits_per_cycle: 16,
            dram_channels: 6,
            dram: DramTiming {
                burst: 2,
                ..DramTiming::default()
            },
            clock_ghz: 0.7,
            scheduler: SchedulerPolicy::Lrr,
            active_warp_limit: None,
        }
    }

    /// The Volta-class machine of Fig. 19: 84 SMs, 6 MB L2 and ~5× the
    /// memory bandwidth (900 GB/s), per §V-B "Volta GPU".
    pub fn volta() -> Self {
        GpuConfig {
            num_sms: 84,
            warps_per_sm: 64,
            threads_per_warp: 32,
            mshr_entries: 64,
            mshr_targets: 8,
            l2_banks: 24,
            l2_sets: 256,
            l2_ways: 8,
            l2_latency: 30,
            l2_mshr_entries: 64,
            icnt_latency: 40,
            icnt_flits_per_cycle: 96,
            dram_channels: 24,
            dram: DramTiming {
                burst: 2,
                ..DramTiming::default()
            },
            clock_ghz: 1.4,
            scheduler: SchedulerPolicy::Lrr,
            active_warp_limit: None,
        }
    }

    /// Total resident threads (paper: 1536 per SM on the Fermi preset).
    pub fn threads_per_sm(&self) -> usize {
        self.warps_per_sm * self.threads_per_warp
    }

    /// L2 slice index for a line (fine-grained interleave).
    pub fn l2_bank_of(&self, line: u64) -> usize {
        (line % self.l2_banks as u64) as usize
    }

    /// DRAM channel for an L2 slice (two slices per channel on the Fermi
    /// preset).
    pub fn dram_channel_of_bank(&self, bank: usize) -> usize {
        bank * self.dram_channels / self.l2_banks
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (zero SMs/warps, L2 banks not a
    /// multiple of DRAM channels, non-power-of-two L2 sets).
    pub fn validate(&self) {
        assert!(
            self.num_sms > 0 && self.warps_per_sm > 0,
            "need SMs and warps"
        );
        assert!(
            self.warps_per_sm <= u16::MAX as usize,
            "warp indices are u16 throughout the engine (LSU slots, MSHR \
             targets): more than 65535 warps per SM would alias"
        );
        assert!(self.threads_per_warp == 32, "CUDA warps have 32 lanes");
        assert!(
            self.l2_banks.is_multiple_of(self.dram_channels),
            "L2 banks must spread evenly over DRAM channels"
        );
        assert!(
            self.l2_sets.is_power_of_two(),
            "L2 sets must be a power of two"
        );
        if let Some(limit) = self.active_warp_limit {
            assert!(limit > 0, "warp throttling needs at least one active warp");
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::gtx480()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx480_matches_table1() {
        let c = GpuConfig::gtx480();
        c.validate();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.warps_per_sm, 48);
        assert_eq!(c.threads_per_sm(), 1536);
        assert_eq!(c.l2_banks, 12);
        assert_eq!(c.dram_channels, 6);
        // 12 banks x 64 sets x 8 ways x 128 B = 786 KB total L2.
        assert_eq!(c.l2_banks * c.l2_sets * c.l2_ways * 128, 786_432);
    }

    #[test]
    fn volta_is_bigger_everywhere() {
        let v = GpuConfig::volta();
        v.validate();
        let f = GpuConfig::gtx480();
        assert!(v.num_sms > f.num_sms);
        assert!(v.l2_banks * v.l2_sets * v.l2_ways > f.l2_banks * f.l2_sets * f.l2_ways);
        assert!(v.dram_channels > f.dram_channels);
        // 24 banks x 256 sets x 8 ways x 128 B = 6 MB L2.
        assert_eq!(v.l2_banks * v.l2_sets * v.l2_ways * 128, 6 * 1024 * 1024);
    }

    #[test]
    fn bank_to_channel_mapping_is_balanced() {
        let c = GpuConfig::gtx480();
        let mut per_channel = vec![0; c.dram_channels];
        for b in 0..c.l2_banks {
            per_channel[c.dram_channel_of_bank(b)] += 1;
        }
        assert!(
            per_channel.iter().all(|&n| n == 2),
            "two L2 banks per channel"
        );
    }

    #[test]
    fn line_interleave_covers_all_banks() {
        let c = GpuConfig::gtx480();
        let mut seen = vec![false; c.l2_banks];
        for line in 0..c.l2_banks as u64 {
            seen[c.l2_bank_of(line)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
