//! Lockstep check hooks: the engine's observable-event stream.
//!
//! A [`CheckSink`] attached via [`crate::system::GpuSystem::attach_check_sink`]
//! receives one [`CheckEvent`] per observable state transition in the
//! memory hierarchy — injection, delivery, L2 response, DRAM queue/fill,
//! response retirement, skip spans — plus a per-cycle [`CheckSink::cycle_end`]
//! callback with read access to the whole system. `fuse-check` builds its
//! functional reference model on this stream; the hooks themselves carry
//! no policy.
//!
//! The sink is a runtime opt-in exactly like the tracer and profiler
//! (DESIGN.md §3e): with no sink attached the per-tick cost is a `None`
//! check, no statistic is touched either way, and the steady-state loop
//! stays allocation-free. The 42-cell digest grid pins that claim.

use crate::l1d::OutgoingKind;
use crate::system::GpuSystem;

/// One observable state transition, in engine phase order within a cycle.
///
/// All times are SM cycles; `line` is a cache-line address
/// ([`fuse_cache::line::LineAddr`]`.0`); `gid` is the engine's global
/// request id (the trace-slab slot, [`crate::slab::NO_SLOT`] for traffic
/// that never receives a response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckEvent {
    /// An L1 put a request on the request network (phase_inject).
    Outgoing {
        /// Issuing SM.
        sm: usize,
        /// Global request id (`NO_SLOT` for write-throughs).
        gid: u64,
        /// Requested line.
        line: u64,
        /// Traffic class.
        kind: OutgoingKind,
        /// Injection cycle.
        at: u64,
    },
    /// The request network delivered a packet to its L2 slice.
    ReqDeliver {
        /// Global request id.
        gid: u64,
        /// Issuing SM.
        sm: usize,
        /// Destination L2 bank.
        bank: usize,
        /// Requested line.
        line: u64,
        /// Traffic class.
        kind: OutgoingKind,
        /// Delivery cycle.
        at: u64,
    },
    /// An L2 slice produced a response (hit, merge drain, or fill drain).
    L2Response {
        /// Global request id.
        gid: u64,
        /// Responding L2 bank.
        bank: usize,
        /// Line.
        line: u64,
        /// Cycle the response entered the response network.
        at: u64,
    },
    /// The engine queued a request toward a DRAM channel.
    DramQueued {
        /// Destination channel.
        channel: usize,
        /// Originating L2 bank.
        bank: usize,
        /// Line (L2-level address, *before* channel-localisation).
        line: u64,
        /// Read (fill) vs write-back.
        is_read: bool,
        /// Queue cycle.
        at: u64,
    },
    /// A DRAM read completed and its fill was applied to the L2.
    DramFill {
        /// Servicing channel.
        channel: usize,
        /// Destination L2 bank.
        bank: usize,
        /// Line (L2-level address).
        line: u64,
        /// Cycle the read was queued ([`CheckEvent::DramQueued`] time).
        queued_at: u64,
        /// Cycle the channel says the data left the pins.
        finished_at: u64,
        /// Whether the access hit the open row.
        row_hit: bool,
        /// Cycle the engine collected the completion. Both engines must
        /// collect exactly at `finished_at` — a skip that overshoots a
        /// DRAM completion shows up here.
        at: u64,
    },
    /// A response was delivered back to its SM and the read retired.
    Respond {
        /// Global request id (slot is recycled after this event).
        gid: u64,
        /// Destination SM.
        sm: usize,
        /// Line.
        line: u64,
        /// Retirement cycle.
        at: u64,
    },
    /// The skip engine fast-forwarded over `[from, from + span)`.
    Skip {
        /// First skipped cycle.
        from: u64,
        /// Number of skipped cycles.
        span: u64,
    },
}

/// Receiver for the engine's check-event stream.
///
/// Implementations must not assume they see every run from cycle 0 — the
/// sink can be attached to a system that already executed.
pub trait CheckSink {
    /// Called at each observable state transition, in phase order.
    fn event(&mut self, e: CheckEvent);

    /// Called once at the end of every ticked cycle (after all phases,
    /// before the clock advances past `cycle`) with read access to the
    /// whole system, so a checker can compare its model against live
    /// occupancy — trace slots, MSHR contents, L2 pending lines, DRAM
    /// queues. Default: no-op.
    fn cycle_end(&mut self, sys: &GpuSystem, cycle: u64) {
        let _ = (sys, cycle);
    }

    /// Downcast support, so a concrete checker can be recovered after
    /// [`GpuSystem::detach_check_sink`] (same idiom as
    /// [`crate::l1d::L1dModel::as_any`]).
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::l1d::IdealL1;
    use crate::warp::{MemOp, StreamProgram, WarpOp, WarpProgram};

    /// Counts events and cycle_end callbacks; remembers retired gids.
    #[derive(Default, Clone)]
    struct Recorder {
        events: Vec<CheckEvent>,
        cycle_ends: u64,
        live_mismatch: bool,
        live: std::collections::HashSet<u64>,
    }

    impl CheckSink for Recorder {
        fn event(&mut self, e: CheckEvent) {
            match e {
                CheckEvent::Outgoing { gid, kind, .. } if kind.expects_response() => {
                    assert!(self.live.insert(gid), "gid reused while live");
                }
                CheckEvent::Respond { gid, .. } => {
                    assert!(self.live.remove(&gid), "response without a live gid");
                }
                _ => {}
            }
            self.events.push(e);
        }

        fn cycle_end(&mut self, sys: &GpuSystem, _cycle: u64) {
            self.cycle_ends += 1;
            if sys.traces_live() != self.live.len() {
                self.live_mismatch = true;
            }
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn run_with_sink(skip: bool) -> (crate::stats::SimStats, Recorder) {
        let cfg = GpuConfig {
            num_sms: 2,
            warps_per_sm: 4,
            ..GpuConfig::gtx480()
        };
        let mut sys = GpuSystem::new(
            cfg,
            |_| Box::new(IdealL1::new()),
            |s, w| {
                let base = (s as u64 * 64 + w as u64) << 20;
                let v: Vec<WarpOp> = (0..6)
                    .map(|i| WarpOp::Mem(MemOp::strided(0x20, false, base + i * 128, 4, 32)))
                    .collect();
                Box::new(StreamProgram::new(v)) as Box<dyn WarpProgram>
            },
        );
        sys.set_cycle_skipping(skip);
        sys.attach_check_sink(Box::new(Recorder::default()));
        let stats = sys.run(1_000_000);
        let sink = sys.detach_check_sink().expect("sink was attached");
        let rec = sink
            .as_any()
            .downcast_ref::<Recorder>()
            .expect("recorder")
            .clone();
        (stats, rec)
    }

    #[test]
    fn every_tracked_request_retires_exactly_once() {
        let (stats, rec) = run_with_sink(true);
        assert!(rec.live.is_empty(), "all gids must retire");
        assert!(
            !rec.live_mismatch,
            "sink live-set must track the trace slab"
        );
        let responds = rec
            .events
            .iter()
            .filter(|e| matches!(e, CheckEvent::Respond { .. }))
            .count() as u64;
        assert_eq!(responds, stats.completed_reads);
        assert!(rec.cycle_ends > 0 && rec.cycle_ends <= stats.cycles);
    }

    #[test]
    fn sink_sees_identical_event_streams_on_both_engines() {
        let (fast_stats, fast) = run_with_sink(true);
        let (slow_stats, slow) = run_with_sink(false);
        assert_eq!(fast_stats, slow_stats);
        let strip = |r: &Recorder| -> Vec<CheckEvent> {
            r.events
                .iter()
                .filter(|e| !matches!(e, CheckEvent::Skip { .. }))
                .copied()
                .collect()
        };
        assert_eq!(
            strip(&fast),
            strip(&slow),
            "modulo Skip markers, both engines must emit the same stream"
        );
    }

    #[test]
    fn attaching_a_sink_does_not_perturb_stats() {
        let run = |sink: bool| {
            let cfg = GpuConfig {
                num_sms: 1,
                warps_per_sm: 2,
                ..GpuConfig::gtx480()
            };
            let mut sys = GpuSystem::new(
                cfg,
                |_| Box::new(IdealL1::new()),
                |_, w| {
                    let v: Vec<WarpOp> = (0..4)
                        .map(|i| {
                            WarpOp::Mem(MemOp::strided(
                                0x20,
                                i % 2 == 1,
                                ((w as u64) << 20) | (i * 128),
                                4,
                                32,
                            ))
                        })
                        .collect();
                    Box::new(StreamProgram::new(v)) as Box<dyn WarpProgram>
                },
            );
            if sink {
                sys.attach_check_sink(Box::new(Recorder::default()));
            }
            sys.run(1_000_000)
        };
        assert_eq!(run(false), run(true));
    }
}
