//! # fuse-gpu — cycle-driven GPU memory-hierarchy simulator
//!
//! The GPGPU-Sim stand-in for the FUSE reproduction (Zhang, Jung, Kandemir,
//! HPCA 2019). It models the parts of the GPU the paper's evaluation is
//! sensitive to:
//!
//! * [`sm`] — streaming multiprocessors issuing one warp instruction per
//!   cycle from lazily generated per-warp programs ([`warp`]), with memory
//!   coalescing ([`coalesce`]) and precise per-warp blocking on outstanding
//!   loads;
//! * [`l1d`] — the [`l1d::L1dModel`] trait every L1D configuration
//!   implements (the FUSE controller lives in `fuse-core`), plus the
//!   infinite "Oracle" cache of Fig. 3;
//! * [`icnt`] — a bandwidth- and latency-modelled interconnect carrying
//!   requests to the shared L2 slices and fills back (this is where the
//!   paper's "outgoing memory references" are counted);
//! * [`l2`] — banked, set-associative, write-back L2;
//! * DRAM — re-exported from `fuse-mem` ([`fuse_mem::dram`]);
//! * [`system`] — the engine wiring everything together, with the off-chip
//!   residency decomposition needed for Fig. 1.
//!
//! The compute pipeline is deliberately abstract (1 warp-instruction issue
//! per SM per cycle, no intra-warp dependency stalls): every figure in the
//! paper compares L1D organisations against each other, and that relative
//! comparison is driven by memory behaviour, which this engine models in
//! detail. See DESIGN.md §5 for the fidelity argument.
//!
//! # Examples
//!
//! ```
//! use fuse_gpu::config::GpuConfig;
//! use fuse_gpu::system::GpuSystem;
//! use fuse_gpu::l1d::IdealL1;
//! use fuse_gpu::warp::{StreamProgram, WarpOp, MemOp};
//!
//! // Two warps streaming over a small array through an ideal L1.
//! let cfg = GpuConfig { num_sms: 1, warps_per_sm: 2, ..GpuConfig::gtx480() };
//! let mut sys = GpuSystem::new(
//!     cfg,
//!     |_| Box::new(IdealL1::new()),
//!     |sm, warp| {
//!         let base = (sm * 2 + warp as usize) as u64 * 4096;
//!         let ops: Vec<WarpOp> = (0..8)
//!             .map(|i| WarpOp::Mem(MemOp::strided(0x100, false, base + i * 128, 4, 32)))
//!             .collect();
//!         Box::new(StreamProgram::new(ops))
//!     },
//! );
//! let stats = sys.run(100_000);
//! assert!(stats.instructions > 0);
//! ```

pub mod check;
pub mod coalesce;
pub mod config;
pub mod convert;
pub mod icnt;
pub mod l1d;
pub mod l2;
pub mod sharded;
pub mod slab;
pub mod sm;
pub mod stats;
pub mod system;
pub mod warp;
pub mod wheel;

pub use check::{CheckEvent, CheckSink};
pub use config::GpuConfig;
pub use l1d::{IdealL1, L1Access, L1Outcome, L1Response, L1dModel, OutgoingKind, OutgoingReq};
pub use sharded::{ShardConfig, ShardMode, ShardedEngine};
pub use sm::SchedulerPolicy;
pub use stats::SimStats;
pub use system::GpuSystem;
pub use warp::{MemOp, StreamProgram, WarpOp, WarpProgram};
