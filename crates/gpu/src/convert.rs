//! Checked narrowing conversions.
//!
//! The engine packs indices into narrow fields in several places — warp
//! indices into `u16` LSU slots, slab slots into `u32` free lists, track
//! ids into trace events. A bare `as` cast silently truncates when a
//! configuration outgrows the field (e.g. `warps_per_sm > 65535` would
//! alias warps); [`narrow`] makes every such site loudly checked instead,
//! in release builds too — the check is a compare against a constant on a
//! cold-ish path, and silent index aliasing is never an acceptable
//! failure mode in a simulator that claims bitwise reproducibility.

/// Converts `v` to `T`, panicking if the value does not fit.
///
/// # Examples
///
/// ```
/// use fuse_gpu::convert::narrow;
/// let x: u16 = narrow(1234usize);
/// assert_eq!(x, 1234);
/// ```
///
/// ```should_panic
/// use fuse_gpu::convert::narrow;
/// let _: u16 = narrow(70_000usize); // lost bits: panics
/// ```
#[inline]
#[track_caller]
pub fn narrow<T, U>(v: U) -> T
where
    T: TryFrom<U>,
    U: Copy + std::fmt::Display,
{
    match T::try_from(v) {
        Ok(x) => x,
        Err(_) => panic!(
            "narrowing conversion lost bits: {v} does not fit in {}",
            std::any::type_name::<T>()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_convert() {
        let a: u32 = narrow(7usize);
        assert_eq!(a, 7);
        let b: u16 = narrow(u16::MAX as usize);
        assert_eq!(b, u16::MAX);
        let c: u32 = narrow(u64::from(u32::MAX));
        assert_eq!(c, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "lost bits")]
    fn out_of_range_panics() {
        let _: u16 = narrow(65_536usize);
    }
}
