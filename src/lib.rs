//! # fuse — reproduction of *FUSE: Fusing STT-MRAM into GPUs to Alleviate
//! Off-Chip Memory Access Overheads* (Zhang, Jung, Kandemir — HPCA 2019)
//!
//! This umbrella crate ties the workspace together and provides the
//! experiment [`runner`] used by every example, integration test and
//! figure-regeneration bench:
//!
//! * [`mem`] ([`fuse_mem`]) — SRAM/STT-MRAM technology tables, energy and
//!   area models, DRAM timing;
//! * [`cache`] ([`fuse_cache`]) — tag arrays, MSHRs, counting Bloom
//!   filters, the associativity-approximation store, swap buffer and tag
//!   queue;
//! * [`predict`] ([`fuse_predict`]) — the read-level predictor and the
//!   DASCA-style dead-write predictor;
//! * [`gpu`] ([`fuse_gpu`]) — the cycle-driven GPU memory-hierarchy
//!   simulator (SMs, interconnect, L2, DRAM);
//! * [`obs`] ([`fuse_obs`]) — opt-in observability: the windowed
//!   cycle-attribution profiler and the Chrome-trace event tracer;
//! * [`core`] ([`fuse_core`]) — the FUSE L1D controller and all of Table
//!   I's L1D configurations;
//! * [`workloads`] ([`fuse_workloads`]) — the 21 calibrated synthetic
//!   benchmarks of Table II;
//! * [`check`] ([`fuse_check`]) — the lockstep reference-model oracle,
//!   differential fuzzer and trace shrinker behind `fusesim check`;
//! * [`serve`] ([`fuse_serve`]) — the content-addressed result cache and
//!   the batch simulation service behind `fusesim serve` (DESIGN.md §3h).
//!
//! # Quickstart
//!
//! Compare Dy-FUSE against the SRAM baseline on an irregular workload:
//!
//! ```
//! use fuse::runner::{run_workload, RunConfig};
//! use fuse::core::config::L1Preset;
//! use fuse::workloads::by_name;
//!
//! let cfg = RunConfig::smoke(); // tiny budget for doctests
//! let atax = by_name("ATAX").unwrap();
//! let base = run_workload(&atax, L1Preset::L1Sram, &cfg);
//! let fuse = run_workload(&atax, L1Preset::DyFuse, &cfg);
//! assert!(base.sim.instructions == fuse.sim.instructions);
//! println!("speedup: {:.2}x", fuse.ipc() / base.ipc());
//! ```

pub use fuse_cache as cache;
pub use fuse_check as check;
pub use fuse_core as core;
pub use fuse_gpu as gpu;
pub use fuse_mem as mem;
pub use fuse_obs as obs;
pub use fuse_predict as predict;
pub use fuse_serve as serve;
pub use fuse_workloads as workloads;

pub mod runner;
pub mod sweep;

pub use runner::{
    geomean, lockstep_workload, preset_by_name, run_l1_config, run_workload,
    sharded_oracle_workload, RunConfig, RunResult, ServeBackend,
};
pub use sweep::{SweepCell, SweepConfig, SweepPlan, SweepReport};
