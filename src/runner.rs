//! Experiment runner: one (workload, L1 configuration) → one result.
//!
//! Every figure and table bench, every example and most integration tests
//! funnel through [`run_workload`] / [`run_l1_config`], so all numbers in
//! EXPERIMENTS.md come from the same code path.

use fuse_core::config::{L1Config, L1Preset};
use fuse_core::controller::FuseL1;
use fuse_core::metrics::L1Metrics;
use fuse_gpu::config::GpuConfig;
use fuse_gpu::sharded::ShardConfig;
use fuse_gpu::stats::SimStats;
use fuse_gpu::system::GpuSystem;
use fuse_mem::energy::{EnergyBreakdown, EnergyParams};
use fuse_mem::tech::BankParams;
use fuse_obs::profile::ProfileReport;
use fuse_obs::trace::TraceRing;
use fuse_serve::key::{CellKey, KeyParts, L1Column};
use fuse_serve::record::CellRecord;
use fuse_workloads::spec::WorkloadSpec;

/// Simulation budget and machine selection for one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The machine to simulate.
    pub gpu: GpuConfig,
    /// Warp-instruction budget per warp (multiplies the workload default;
    /// scaled further by the `FUSE_SCALE` environment variable, so a
    /// longer, closer-to-paper run is one env var away).
    pub ops_scale: f64,
    /// Hard cycle cap (safety net; runs normally finish by retiring).
    pub max_cycles: u64,
    /// Event-driven cycle skipping (`fusesim --no-skip` turns it off).
    /// Either engine yields bitwise-identical [`SimStats`]; skipping is
    /// just faster.
    pub skip: bool,
    /// Active-set tick scheduling — busy cycles dispatch only components
    /// that are due (`fusesim --no-active-set` turns it off). Bitwise
    /// identical [`SimStats`] either way; see DESIGN.md §3i.
    pub active_set: bool,
    /// Cycle-attribution profiling window (`fusesim --metrics-out`).
    /// `None` (the default) keeps the hot path observability-free;
    /// `SimStats` is bitwise identical either way.
    pub metrics_window: Option<u64>,
    /// Event-trace ring capacity (`fusesim --trace-out`). `None` (the
    /// default) disables tracing.
    pub trace_capacity: Option<usize>,
    /// Shard the simulation across this many worker threads
    /// (`fusesim --shards`); `None` (the default) runs the serial engine.
    /// Strict mode — bitwise-identical statistics — unless
    /// [`RunConfig::shard_epoch`] selects a relaxed window. Must be
    /// `1..=num_sms`; [`run_workload`] panics otherwise, so CLI layers
    /// validate via [`ShardConfig::validate`] first.
    pub shards: Option<usize>,
    /// Relaxed-mode epoch window in cycles (`fusesim --shard-epoch`).
    /// Only meaningful with [`RunConfig::shards`]; `None` means strict.
    pub shard_epoch: Option<u64>,
}

impl RunConfig {
    /// The paper's GTX480-class machine with the default budget.
    pub fn standard() -> Self {
        RunConfig {
            gpu: GpuConfig::gtx480(),
            ops_scale: env_scale(),
            max_cycles: 20_000_000,
            skip: true,
            active_set: true,
            metrics_window: None,
            trace_capacity: None,
            shards: None,
            shard_epoch: None,
        }
    }

    /// The Fig. 19 Volta-class machine.
    pub fn volta() -> Self {
        RunConfig {
            gpu: GpuConfig::volta(),
            ops_scale: env_scale() * 0.25,
            max_cycles: 20_000_000,
            skip: true,
            active_set: true,
            metrics_window: None,
            trace_capacity: None,
            shards: None,
            shard_epoch: None,
        }
    }

    /// A deliberately tiny budget for doctests and smoke tests.
    pub fn smoke() -> Self {
        RunConfig {
            gpu: GpuConfig {
                num_sms: 2,
                warps_per_sm: 8,
                ..GpuConfig::gtx480()
            },
            ops_scale: 0.25,
            max_cycles: 2_000_000,
            skip: true,
            active_set: true,
            metrics_window: None,
            trace_capacity: None,
            shards: None,
            shard_epoch: None,
        }
    }

    /// The resolved warp-instruction budget for `spec` — the number the
    /// generators actually receive (public because it is part of the
    /// result-cache key; see [`preset_cell_key`]).
    pub fn ops_for(&self, spec: &WorkloadSpec) -> usize {
        ((spec.ops_per_warp as f64 * self.ops_scale).round() as usize).max(8)
    }

    /// True when an observer (profiler or tracer) is attached. Observed
    /// runs carry payloads a [`CellRecord`] cannot represent, so cache
    /// layers bypass for them.
    pub fn observed(&self) -> bool {
        self.metrics_window.is_some() || self.trace_capacity.is_some()
    }

    /// The sharding request, if any: strict with [`RunConfig::shards`]
    /// alone, relaxed once [`RunConfig::shard_epoch`] sets a window.
    pub fn shard_config(&self) -> Option<ShardConfig> {
        self.shards.map(|shards| match self.shard_epoch {
            Some(w) => ShardConfig::relaxed(shards, w),
            None => ShardConfig::strict(shards),
        })
    }
}

fn env_scale() -> f64 {
    std::env::var("FUSE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Configuration name (preset or custom).
    pub config: String,
    /// Engine statistics.
    pub sim: SimStats,
    /// FUSE controller metrics summed over SMs (zeroed for Oracle).
    pub metrics: L1Metrics,
    /// Evaluated energy breakdown.
    pub energy: EnergyBreakdown,
    /// Cycles the engine fast-forwarded over (0 with `--no-skip`).
    /// Not part of `sim`: both engines must report identical statistics.
    pub skipped_cycles: u64,
    /// Component dispatches the serial engine actually performed, and the
    /// opportunities it had (components × ticked cycles). Engine
    /// telemetry like `skipped_cycles` — not part of `sim`, not cached
    /// (both rehydrate as 0 from a [`CellRecord`]), zero under sharding
    /// (the coordinator never drives the serial tick loop).
    pub component_ticks: u64,
    /// See [`RunResult::component_ticks`].
    pub component_opportunities: u64,
    /// Windowed stall-breakdown profile (`Some` iff
    /// [`RunConfig::metrics_window`] was set).
    pub profile: Option<ProfileReport>,
    /// Packet-level event trace (`Some` iff
    /// [`RunConfig::trace_capacity`] was set).
    pub trace: Option<TraceRing>,
}

impl RunResult {
    /// Whole-GPU IPC.
    pub fn ipc(&self) -> f64 {
        self.sim.ipc()
    }

    /// L1D miss rate.
    pub fn miss_rate(&self) -> f64 {
        self.sim.l1_miss_rate()
    }

    /// L1D energy in nJ (Fig. 17's quantity).
    pub fn l1_energy_nj(&self) -> f64 {
        self.energy.l1_nj()
    }

    /// Outgoing memory references (the paper's headline 32% reduction).
    pub fn outgoing_requests(&self) -> u64 {
        self.sim.outgoing_requests
    }

    /// The cacheable projection of this result: everything except the
    /// observer payloads (`profile`/`trace`), which cache layers refuse
    /// to serve anyway ([`RunConfig::observed`]).
    pub fn to_record(&self) -> CellRecord {
        CellRecord {
            workload: self.workload.clone(),
            config: self.config.clone(),
            sim: self.sim,
            metrics: self.metrics,
            energy: self.energy,
            skipped_cycles: self.skipped_cycles,
        }
    }

    /// Rehydrates a result from a cached record. `profile` and `trace`
    /// are `None`: observed runs are never cached.
    pub fn from_record(rec: &CellRecord) -> RunResult {
        RunResult {
            workload: rec.workload.clone(),
            config: rec.config.clone(),
            sim: rec.sim,
            metrics: rec.metrics,
            energy: rec.energy,
            skipped_cycles: rec.skipped_cycles,
            component_ticks: 0,
            component_opportunities: 0,
            profile: None,
            trace: None,
        }
    }
}

/// Content key for (`spec` on preset `preset` under `rc`) — see
/// [`fuse_serve::key`] for the invalidation contract. Oracle has no
/// finite configuration, so its column keys on the engine version alone.
pub fn preset_cell_key(spec: &WorkloadSpec, preset: L1Preset, rc: &RunConfig) -> CellKey {
    let cfg = (preset != L1Preset::Oracle).then(|| preset.config());
    cell_key(
        spec,
        L1Column::Preset {
            name: preset.name(),
            config: cfg.as_ref(),
        },
        rc,
    )
}

/// Content key for (`spec` on the custom configuration `cfg` named
/// `config_name` under `rc`).
pub fn custom_cell_key(
    spec: &WorkloadSpec,
    config_name: &str,
    cfg: &L1Config,
    rc: &RunConfig,
) -> CellKey {
    cell_key(
        spec,
        L1Column::Custom {
            name: config_name,
            config: cfg,
        },
        rc,
    )
}

/// Resolves an L1 preset by its published column name, case-insensitively
/// (`"dy-fuse"` → [`L1Preset::DyFuse`]).
pub fn preset_by_name(name: &str) -> Option<L1Preset> {
    L1Preset::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

/// The serving side of the [`fuse_serve::CellBackend`] seam: keys and
/// simulations resolved through the same [`RunConfig`] every other entry
/// point uses, so a cell served over a socket is bit-identical to one run
/// locally. Shared by `fusesim serve` and the `serve_load` bench.
pub struct ServeBackend {
    rc: RunConfig,
}

impl ServeBackend {
    /// A backend simulating under `rc`.
    pub fn new(rc: RunConfig) -> ServeBackend {
        ServeBackend { rc }
    }
}

impl fuse_serve::CellBackend for ServeBackend {
    fn key(&self, spec: &fuse_serve::proto::CellSpec) -> Result<CellKey, String> {
        let w = fuse_workloads::by_name(&spec.workload)
            .ok_or_else(|| format!("unknown workload {:?}", spec.workload))?;
        let p = preset_by_name(&spec.config)
            .ok_or_else(|| format!("unknown config {:?}", spec.config))?;
        Ok(preset_cell_key(&w, p, &self.rc))
    }

    fn simulate(&self, spec: &fuse_serve::proto::CellSpec) -> Result<CellRecord, String> {
        let w = fuse_workloads::by_name(&spec.workload)
            .ok_or_else(|| format!("unknown workload {:?}", spec.workload))?;
        let p = preset_by_name(&spec.config)
            .ok_or_else(|| format!("unknown config {:?}", spec.config))?;
        Ok(run_workload(&w, p, &self.rc).to_record())
    }
}

fn cell_key(spec: &WorkloadSpec, l1: L1Column<'_>, rc: &RunConfig) -> CellKey {
    CellKey::derive(&KeyParts {
        workload: spec,
        l1,
        gpu: &rc.gpu,
        ops_per_warp: rc.ops_for(spec),
        max_cycles: rc.max_cycles,
        skip: rc.skip,
        active_set: rc.active_set,
        shards: rc.shards,
        shard_epoch: rc.shard_epoch,
    })
}

fn collect(
    workload: &str,
    config_name: &str,
    sys: &mut GpuSystem,
    sim: SimStats,
    banks: (Option<BankParams>, Option<BankParams>),
) -> RunResult {
    let mut metrics = L1Metrics::default();
    for s in 0..sys.config().num_sms {
        if let Some(l1) = sys.l1(s).as_any().downcast_ref::<FuseL1>() {
            metrics.merge(&l1.metrics());
        }
    }
    let params = EnergyParams {
        sram: banks.0,
        stt: banks.1,
        num_sms: sys.config().num_sms as u32,
        dram_channels: sys.config().dram_channels as u32,
        clock_ghz: sys.config().clock_ghz,
        ..EnergyParams::default()
    };
    let energy = params.evaluate(&sim.energy, sim.cycles);
    RunResult {
        workload: workload.to_string(),
        config: config_name.to_string(),
        sim,
        metrics,
        energy,
        skipped_cycles: sys.skipped_cycles(),
        component_ticks: sys.component_ticks(),
        component_opportunities: sys.component_opportunities(),
        profile: sys.take_profile(),
        trace: sys.take_trace(),
    }
}

fn apply_observability(sys: &mut GpuSystem, rc: &RunConfig) {
    if let Some(window) = rc.metrics_window {
        sys.enable_profiler(window);
    }
    if let Some(capacity) = rc.trace_capacity {
        sys.enable_tracer(capacity);
    }
}

/// Runs `spec` on one of the paper's named L1D presets.
///
/// # Examples
///
/// ```
/// use fuse::runner::{run_workload, RunConfig};
/// use fuse::core::config::L1Preset;
/// let w = fuse::workloads::by_name("pathf").unwrap();
/// let r = run_workload(&w, L1Preset::L1Sram, &RunConfig::smoke());
/// assert!(r.sim.instructions > 0);
/// ```
pub fn run_workload(spec: &WorkloadSpec, preset: L1Preset, rc: &RunConfig) -> RunResult {
    let ops = rc.ops_for(spec);
    let mut sys = GpuSystem::new(
        rc.gpu.clone(),
        |_| preset.build_model(),
        |sm, warp| spec.program(sm, warp, ops),
    );
    sys.set_cycle_skipping(rc.skip);
    sys.set_active_set(rc.active_set);
    apply_observability(&mut sys, rc);
    let sim = run_engine(&mut sys, rc);
    collect(
        spec.name,
        preset.name(),
        &mut sys,
        sim,
        preset.energy_banks(),
    )
}

/// Dispatches to the serial or sharded engine per `rc`.
fn run_engine(sys: &mut GpuSystem, rc: &RunConfig) -> SimStats {
    match rc.shard_config() {
        Some(sc) => sys.run_sharded(rc.max_cycles, &sc),
        None => sys.run(rc.max_cycles),
    }
}

/// Runs `spec` on an arbitrary [`L1Config`] (the Fig. 18 ratio sweep and
/// ablations use this).
pub fn run_l1_config(
    spec: &WorkloadSpec,
    cfg: &L1Config,
    config_name: &str,
    rc: &RunConfig,
) -> RunResult {
    let ops = rc.ops_for(spec);
    let banks = (cfg.sram.map(|s| s.params), cfg.stt.map(|s| s.params));
    let mut sys = GpuSystem::new(
        rc.gpu.clone(),
        |_| Box::new(FuseL1::new(cfg.clone())),
        |sm, warp| spec.program(sm, warp, ops),
    );
    sys.set_cycle_skipping(rc.skip);
    sys.set_active_set(rc.active_set);
    apply_observability(&mut sys, rc);
    let sim = run_engine(&mut sys, rc);
    collect(spec.name, config_name, &mut sys, sim, banks)
}

/// Lockstep-verifies `spec` on `preset` under `rc`'s machine and budget:
/// both engines run with the `fuse-check` reference-model oracle
/// attached, and the report carries every divergence (oracle violations,
/// statistic mismatches, event-stream diffs). `rc.skip` is ignored —
/// lockstep always runs both engines.
///
/// # Examples
///
/// ```
/// use fuse::runner::{lockstep_workload, RunConfig};
/// use fuse::core::config::L1Preset;
/// let w = fuse::workloads::by_name("pathf").unwrap();
/// let report = lockstep_workload(&w, L1Preset::L1Sram, &RunConfig::smoke());
/// assert!(report.ok(), "{:?}", report.violations);
/// ```
pub fn lockstep_workload(
    spec: &WorkloadSpec,
    preset: L1Preset,
    rc: &RunConfig,
) -> fuse_check::LockstepReport {
    fuse_check::lockstep::check_workload(spec, preset, &rc.gpu, rc.ops_for(spec), rc.max_cycles)
}

/// Audits `spec` on `preset` under the sharded relaxed engine with the
/// `fuse-check` oracle attached; returns every violation the oracle
/// raised (empty means the run obeyed the reference model). `rc` must
/// select relaxed sharding ([`RunConfig::shards`] and
/// [`RunConfig::shard_epoch`] both set).
pub fn sharded_oracle_workload(
    spec: &WorkloadSpec,
    preset: L1Preset,
    rc: &RunConfig,
) -> Vec<String> {
    let shards = rc.shards.expect("rc selects sharding");
    let epoch = rc.shard_epoch.expect("relaxed mode needs an epoch window");
    fuse_check::lockstep::check_workload_sharded(
        spec,
        preset,
        &rc.gpu,
        rc.ops_for(spec),
        rc.max_cycles,
        shards,
        epoch,
    )
}

/// Geometric mean (the paper's GMEANS column). Ignores non-positive
/// entries; returns 0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|x| **x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_workloads::by_name;

    #[test]
    fn geomean_math() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(
            (geomean(&[5.0, 0.0, -1.0]) - 5.0).abs() < 1e-12,
            "non-positive ignored"
        );
    }

    #[test]
    fn smoke_run_produces_consistent_result() {
        let w = by_name("gaussian").unwrap();
        let r = run_workload(&w, L1Preset::L1Sram, &RunConfig::smoke());
        assert_eq!(r.workload, "gaussian");
        assert_eq!(r.config, "L1-SRAM");
        assert!(r.sim.instructions > 0);
        assert!(r.ipc() > 0.0);
        assert!(r.energy.total_nj() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let w = by_name("2MM").unwrap();
        let rc = RunConfig::smoke();
        let a = run_workload(&w, L1Preset::DyFuse, &rc);
        let b = run_workload(&w, L1Preset::DyFuse, &rc);
        assert_eq!(a.sim, b.sim);
    }

    #[test]
    fn skip_and_tick_engines_agree_on_a_fuse_config() {
        let w = by_name("srad_v1").unwrap();
        let fast = run_workload(&w, L1Preset::DyFuse, &RunConfig::smoke());
        let slow_rc = RunConfig {
            skip: false,
            ..RunConfig::smoke()
        };
        let slow = run_workload(&w, L1Preset::DyFuse, &slow_rc);
        assert_eq!(fast.sim, slow.sim, "engines must agree bitwise");
        assert_eq!(slow.skipped_cycles, 0);
        assert!(fast.skipped_cycles > 0, "smoke runs have dead cycles");
    }

    #[test]
    fn active_set_and_always_tick_agree_on_a_fuse_config() {
        let w = by_name("srad_v1").unwrap();
        let fast = run_workload(&w, L1Preset::DyFuse, &RunConfig::smoke());
        let slow_rc = RunConfig {
            active_set: false,
            ..RunConfig::smoke()
        };
        let slow = run_workload(&w, L1Preset::DyFuse, &slow_rc);
        assert_eq!(fast.sim, slow.sim, "schedulers must agree bitwise");
        assert!(
            fast.component_ticks < slow.component_ticks,
            "active-set must elide dispatches: {} vs {}",
            fast.component_ticks,
            slow.component_ticks
        );
        assert!(fast.component_ticks <= fast.component_opportunities);
    }

    #[test]
    fn observability_is_off_by_default_and_opt_in() {
        let w = by_name("ATAX").unwrap();
        let plain = run_workload(&w, L1Preset::DyFuse, &RunConfig::smoke());
        assert!(plain.profile.is_none() && plain.trace.is_none());
        let rc = RunConfig {
            metrics_window: Some(1024),
            trace_capacity: Some(4096),
            ..RunConfig::smoke()
        };
        let obs = run_workload(&w, L1Preset::DyFuse, &rc);
        assert_eq!(plain.sim, obs.sim, "observability must not perturb stats");
        let profile = obs.profile.expect("profiler was on");
        assert!(!profile.series.samples.is_empty());
        let covered: u64 = profile.series.samples.iter().map(|s| s.len).sum();
        assert_eq!(covered, obs.sim.cycles, "windows tile the run");
        let trace = obs.trace.expect("tracer was on");
        assert!(trace.iter().next().is_some(), "a DyFuse run emits events");
    }

    #[test]
    fn sharded_strict_run_matches_serial_bitwise() {
        let w = by_name("GEMM").unwrap();
        let serial = run_workload(&w, L1Preset::DyFuse, &RunConfig::smoke());
        let rc = RunConfig {
            shards: Some(2),
            ..RunConfig::smoke()
        };
        let sharded = run_workload(&w, L1Preset::DyFuse, &rc);
        assert_eq!(
            serial.sim, sharded.sim,
            "strict sharding must be bitwise-invisible"
        );
        let relaxed_rc = RunConfig {
            shards: Some(2),
            shard_epoch: Some(32),
            ..RunConfig::smoke()
        };
        let relaxed = run_workload(&w, L1Preset::DyFuse, &relaxed_rc);
        assert_eq!(
            relaxed.sim.instructions, serial.sim.instructions,
            "relaxed mode still retires every instruction"
        );
    }

    #[test]
    fn record_round_trip_preserves_the_result() {
        let w = by_name("ATAX").unwrap();
        let r = run_workload(&w, L1Preset::DyFuse, &RunConfig::smoke());
        let back = RunResult::from_record(&r.to_record());
        assert_eq!(r.sim, back.sim);
        assert_eq!(r.metrics, back.metrics);
        assert_eq!(r.energy, back.energy);
        assert_eq!(r.skipped_cycles, back.skipped_cycles);
        assert_eq!(r.workload, back.workload);
        assert_eq!(r.config, back.config);
        assert!(back.profile.is_none() && back.trace.is_none());
    }

    #[test]
    fn cell_keys_separate_every_grid_axis() {
        let w = by_name("ATAX").unwrap();
        let rc = RunConfig::smoke();
        let base = preset_cell_key(&w, L1Preset::DyFuse, &rc);
        assert_eq!(
            base,
            preset_cell_key(&w, L1Preset::DyFuse, &rc),
            "same inputs, same key"
        );
        let other_preset = preset_cell_key(&w, L1Preset::L1Sram, &rc);
        let other_workload = preset_cell_key(&by_name("GEMM").unwrap(), L1Preset::DyFuse, &rc);
        let other_budget = preset_cell_key(
            &w,
            L1Preset::DyFuse,
            &RunConfig {
                ops_scale: 0.5,
                ..RunConfig::smoke()
            },
        );
        let tick_engine = preset_cell_key(
            &w,
            L1Preset::DyFuse,
            &RunConfig {
                skip: false,
                ..RunConfig::smoke()
            },
        );
        let always_tick = preset_cell_key(
            &w,
            L1Preset::DyFuse,
            &RunConfig {
                active_set: false,
                ..RunConfig::smoke()
            },
        );
        let keys = [
            &base,
            &other_preset,
            &other_workload,
            &other_budget,
            &tick_engine,
            &always_tick,
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a.hex, b.hex, "axes must not collide");
            }
        }
        // Oracle derives a key without panicking despite having no
        // finite configuration.
        let oracle = preset_cell_key(&w, L1Preset::Oracle, &rc);
        assert!(oracle.text.contains("l1.config=unbounded"));
    }

    #[test]
    fn fuse_metrics_are_collected() {
        let w = by_name("ATAX").unwrap();
        let r = run_workload(&w, L1Preset::FaFuse, &RunConfig::smoke());
        assert!(
            r.metrics.tag_searches > 0,
            "approximate probes must be counted"
        );
    }
}
