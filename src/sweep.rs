//! Parallel sweep execution layer.
//!
//! Every paper figure is a grid of **independent, deterministic**
//! simulations — up to 21 workloads × 6 L1D configurations. A
//! [`SweepPlan`] describes such a (workload × L1 configuration) grid once;
//! [`SweepPlan::run`] executes it on a scoped-thread worker pool (std
//! only: [`std::thread::scope`] plus an atomic work index, no external
//! dependencies) and returns a [`SweepReport`] whose cells are in
//! deterministic grid order — workload-major, exactly as
//! [`SweepPlan::run_serial`] would produce them.
//!
//! # Determinism
//!
//! Each grid cell owns its whole simulator instance ([`run_workload`] /
//! [`run_l1_config`] construct a fresh [`fuse_gpu::system::GpuSystem`] per
//! call) and the workload generators are seeded pure functions of
//! (workload, SM, warp), so cells share no mutable state. Parallel
//! execution therefore yields **bitwise-identical** [`RunResult`]s to the
//! serial path — only the wall-clock timings differ. The
//! `sweep_determinism` integration test and the `parallel_equals_serial`
//! unit test below assert this on every run of the test suite.
//!
//! # Example
//!
//! ```
//! use fuse::runner::RunConfig;
//! use fuse::sweep::SweepPlan;
//! use fuse::core::config::L1Preset;
//!
//! let report = SweepPlan::new("demo", RunConfig::smoke())
//!     .workloads(fuse::workloads::by_name("ATAX"))
//!     .presets(&[L1Preset::L1Sram, L1Preset::DyFuse])
//!     .run();
//! assert_eq!(report.configs, vec!["L1-SRAM", "Dy-FUSE"]);
//! assert!(report.cell(0, 1).result.ipc() > 0.0);
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fuse_core::config::{L1Config, L1Preset};
use fuse_serve::key::CellKey;
use fuse_serve::store::ResultCache;
use fuse_workloads::spec::WorkloadSpec;

use crate::runner::{
    custom_cell_key, preset_cell_key, run_l1_config, run_workload, RunConfig, RunResult,
};

/// One L1D column of the sweep grid.
// `Custom` carries a full `L1Config` inline; a plan holds a handful of
// columns, so the size gap to `Preset` is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum SweepConfig {
    /// A named Table I preset.
    Preset(L1Preset),
    /// An arbitrary configuration (ratio sweeps, ablations).
    Custom {
        /// Column label in the report.
        name: String,
        /// The configuration to run.
        config: L1Config,
    },
}

impl SweepConfig {
    /// The column label.
    pub fn name(&self) -> &str {
        match self {
            SweepConfig::Preset(p) => p.name(),
            SweepConfig::Custom { name, .. } => name,
        }
    }

    fn run(&self, spec: &WorkloadSpec, rc: &RunConfig) -> RunResult {
        match self {
            SweepConfig::Preset(p) => run_workload(spec, *p, rc),
            SweepConfig::Custom { name, config } => run_l1_config(spec, config, name, rc),
        }
    }

    fn key(&self, spec: &WorkloadSpec, rc: &RunConfig) -> CellKey {
        match self {
            SweepConfig::Preset(p) => preset_cell_key(spec, *p, rc),
            SweepConfig::Custom { name, config } => custom_cell_key(spec, name, config, rc),
        }
    }
}

/// A (workload × L1 configuration) grid awaiting execution.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Sweep label (keys the `BENCH_sweep.json` entry).
    pub name: String,
    /// Grid rows.
    pub workloads: Vec<WorkloadSpec>,
    /// Grid columns.
    pub configs: Vec<SweepConfig>,
    /// Machine and budget shared by every cell.
    pub run_config: RunConfig,
    /// Worker threads; `None` uses the host's available parallelism.
    pub threads: Option<usize>,
    /// Content-addressed result cache ([`SweepPlan::cache`]); hit cells
    /// return their recorded results without touching the engine.
    /// Ignored — with `None` counters in the report — when an observer
    /// is attached, since profiles and traces are not cacheable.
    pub cache: Option<Arc<ResultCache>>,
}

impl SweepPlan {
    /// An empty plan under `run_config`.
    pub fn new(name: impl Into<String>, run_config: RunConfig) -> Self {
        SweepPlan {
            name: name.into(),
            workloads: Vec::new(),
            configs: Vec::new(),
            run_config,
            threads: None,
            cache: None,
        }
    }

    /// Adds grid rows.
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(specs);
        self
    }

    /// Adds preset columns.
    pub fn presets(mut self, presets: &[L1Preset]) -> Self {
        self.configs
            .extend(presets.iter().map(|p| SweepConfig::Preset(*p)));
        self
    }

    /// Adds a custom-configuration column.
    pub fn custom(mut self, name: impl Into<String>, config: L1Config) -> Self {
        self.configs.push(SweepConfig::Custom {
            name: name.into(),
            config,
        });
        self
    }

    /// Pins the worker-pool size (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Attaches a content-addressed result cache (`fusesim sweep
    /// --cache-dir`): cells whose [`CellKey`] is already recorded return
    /// without simulating, so an incremental sweep re-runs only
    /// invalidated cells. Cached results are bitwise identical to cold
    /// ones ([`SweepReport::stats_json`] does not change), and the report
    /// gains hit/miss counters. Plans with an observer attached
    /// ([`RunConfig::observed`]) bypass the cache entirely.
    pub fn cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables or disables event-driven cycle skipping for every cell
    /// (`fusesim --no-skip` routes through this). Cell statistics are
    /// bitwise identical either way; only wall clock changes.
    pub fn cycle_skip(mut self, on: bool) -> Self {
        self.run_config.skip = on;
        self
    }

    /// Enables or disables active-set tick scheduling for every cell
    /// (`fusesim --no-active-set` routes through this). Cell statistics
    /// are bitwise identical either way; only wall clock changes.
    pub fn active_set(mut self, on: bool) -> Self {
        self.run_config.active_set = on;
        self
    }

    /// Opts every cell into cycle-attribution profiling with the given
    /// window (`fusesim sweep --metrics-window`). Cell statistics stay
    /// bitwise identical; the per-cell reports ride along in
    /// [`RunResult::profile`] and the `BENCH_sweep.json` entry gains
    /// per-cell window counts.
    pub fn metrics_window(mut self, window: u64) -> Self {
        self.run_config.metrics_window = Some(window);
        self
    }

    /// Runs every cell on the intra-simulation sharded engine with this
    /// many worker threads per cell (`fusesim sweep --shards`) — the
    /// complement of [`SweepPlan::threads`]: `threads` spreads *cells*
    /// across the machine, `shards` spreads *one cell*, so a single huge
    /// cell can use every core. Strict mode (bitwise-identical cell
    /// statistics) unless [`SweepPlan::shard_epoch`] selects a relaxed
    /// window. Callers validate against the machine's SM count via
    /// [`fuse_gpu::sharded::ShardConfig::validate`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.run_config.shards = Some(shards);
        self
    }

    /// Selects relaxed sharded mode with the given epoch window (cycles).
    /// Only meaningful after [`SweepPlan::shards`].
    pub fn shard_epoch(mut self, epoch_cycles: u64) -> Self {
        self.run_config.shard_epoch = Some(epoch_cycles);
        self
    }

    /// Grid cells in the plan.
    pub fn len(&self) -> usize {
        self.workloads.len() * self.configs.len()
    }

    /// True when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn resolved_threads(&self) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.threads.unwrap_or(hw).clamp(1, self.len().max(1))
    }

    /// Executes the grid on the worker pool and returns the cells in
    /// workload-major grid order (identical to [`SweepPlan::run_serial`],
    /// bit for bit — see the module docs).
    pub fn run(&self) -> SweepReport {
        self.run_on(self.resolved_threads())
    }

    /// Executes the grid strictly serially on the calling thread.
    pub fn run_serial(&self) -> SweepReport {
        self.run_on(1)
    }

    fn run_on(&self, threads: usize) -> SweepReport {
        let t0 = Instant::now();
        let n = self.len();
        let cols = self.configs.len().max(1);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<SweepCell>> = (0..n).map(|_| None).collect();
        // Observed runs carry profile/trace payloads a cache record
        // cannot represent, so an attached observer disables the cache.
        let cache = self
            .cache
            .as_deref()
            .filter(|_| !self.run_config.observed());
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);

        if threads <= 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(self.run_cell(i / cols, i % cols, cache, &hits, &misses));
            }
        } else {
            // Scoped worker pool: each worker claims the next unclaimed
            // cell off a shared atomic index and collects (index, cell)
            // pairs locally; the join below scatters them back into grid
            // order, so scheduling jitter never reaches the caller.
            let mut collected: Vec<Vec<(usize, SweepCell)>> = Vec::with_capacity(threads);
            std::thread::scope(|s| {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((
                                    i,
                                    self.run_cell(i / cols, i % cols, cache, &hits, &misses),
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                for w in workers {
                    collected.push(w.join().expect("sweep worker panicked"));
                }
            });
            for (i, cell) in collected.into_iter().flatten() {
                slots[i] = Some(cell);
            }
        }

        SweepReport {
            name: self.name.clone(),
            threads,
            engine: if self.run_config.skip { "skip" } else { "tick" }.to_string(),
            shards: self.run_config.shards,
            epoch_cycles: self
                .run_config
                .shards
                .map(|_| self.run_config.shard_epoch.unwrap_or(0)),
            workloads: self.workloads.iter().map(|w| w.name.to_string()).collect(),
            configs: self.configs.iter().map(|c| c.name().to_string()).collect(),
            cells: slots
                .into_iter()
                .map(|c| c.expect("every cell executed"))
                .collect(),
            wall_ns: t0.elapsed().as_nanos() as u64,
            cache_hits: cache.map(|_| hits.load(Ordering::Relaxed)),
            cache_misses: cache.map(|_| misses.load(Ordering::Relaxed)),
        }
    }

    fn run_cell(
        &self,
        wi: usize,
        ci: usize,
        cache: Option<&ResultCache>,
        hits: &AtomicU64,
        misses: &AtomicU64,
    ) -> SweepCell {
        let t = Instant::now();
        if let Some(cache) = cache {
            let key = self.configs[ci].key(&self.workloads[wi], &self.run_config);
            if let Some(rec) = cache.get(&key) {
                hits.fetch_add(1, Ordering::Relaxed);
                return SweepCell {
                    result: RunResult::from_record(&rec),
                    wall_ns: t.elapsed().as_nanos() as u64,
                    allocs_per_kcycle: None,
                };
            }
            let result = self.configs[ci].run(&self.workloads[wi], &self.run_config);
            // A failed persist only loses warmth, never the result.
            let _ = cache.insert(&key, result.to_record());
            misses.fetch_add(1, Ordering::Relaxed);
            return SweepCell {
                result,
                wall_ns: t.elapsed().as_nanos() as u64,
                allocs_per_kcycle: None,
            };
        }
        let result = self.configs[ci].run(&self.workloads[wi], &self.run_config);
        SweepCell {
            result,
            wall_ns: t.elapsed().as_nanos() as u64,
            allocs_per_kcycle: None,
        }
    }
}

/// One executed grid cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The simulation outcome.
    pub result: RunResult,
    /// Wall time this cell took on its worker.
    pub wall_ns: u64,
    /// Heap operations per simulated kilocycle, when the run was executed
    /// under the counting allocator (`fuse-bench`'s `alloc_budget`
    /// harness). `None` for ordinary sweeps: a meaningful count needs the
    /// `#[global_allocator]` wrapper installed and a serial run, so the
    /// parallel sweep path never fills it in.
    pub allocs_per_kcycle: Option<f64>,
}

impl SweepCell {
    /// Simulated cycles per wall-clock second — the engine-throughput
    /// metric tracked across PRs.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.result.sim.cycles as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Fraction of this cell's simulated cycles the engine fast-forwarded
    /// over instead of ticking (0 under `--no-skip`).
    pub fn skipped_frac(&self) -> f64 {
        if self.result.sim.cycles == 0 {
            0.0
        } else {
            self.result.skipped_cycles as f64 / self.result.sim.cycles as f64
        }
    }
}

/// An executed sweep: cells in workload-major grid order plus timing.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Sweep label.
    pub name: String,
    /// Worker threads used.
    pub threads: usize,
    /// Cycle engine the cells ran on: `"skip"` or `"tick"`.
    pub engine: String,
    /// Per-cell shard count ([`SweepPlan::shards`]); `None` for serial
    /// cells.
    pub shards: Option<usize>,
    /// Relaxed-mode epoch window; `Some(0)` means strict sharding.
    /// `None` iff `shards` is `None`.
    pub epoch_cycles: Option<u64>,
    /// Row labels (workload names).
    pub workloads: Vec<String>,
    /// Column labels (configuration names).
    pub configs: Vec<String>,
    /// `workloads.len() × configs.len()` cells, workload-major.
    pub cells: Vec<SweepCell>,
    /// Whole-sweep wall time.
    pub wall_ns: u64,
    /// Cells answered by the result cache; `None` when no cache was
    /// active (not attached, or bypassed for an observed run).
    pub cache_hits: Option<u64>,
    /// Cells simulated and inserted into the cache; `None` iff
    /// `cache_hits` is.
    pub cache_misses: Option<u64>,
}

impl SweepReport {
    /// The cell at (workload `wi`, configuration `ci`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cell(&self, wi: usize, ci: usize) -> &SweepCell {
        assert!(
            wi < self.workloads.len() && ci < self.configs.len(),
            "cell out of range"
        );
        &self.cells[wi * self.configs.len() + ci]
    }

    /// All cells of workload row `wi`, in configuration order.
    ///
    /// # Panics
    ///
    /// Panics if `wi` is out of range.
    pub fn row(&self, wi: usize) -> &[SweepCell] {
        assert!(wi < self.workloads.len(), "row out of range");
        &self.cells[wi * self.configs.len()..(wi + 1) * self.configs.len()]
    }

    /// Sum of per-cell wall times: what a serial execution of the same
    /// work would have cost (measured inside this run, so it includes any
    /// parallel-contention overhead — a conservative serial estimate).
    pub fn serial_estimate_ns(&self) -> u64 {
        self.cells.iter().map(|c| c.wall_ns).sum()
    }

    /// Wall-clock speedup of this run over the serial estimate.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.serial_estimate_ns() as f64 / self.wall_ns as f64
        }
    }

    /// Total simulated cycles across the grid.
    pub fn sim_cycles_total(&self) -> u64 {
        self.cells.iter().map(|c| c.result.sim.cycles).sum()
    }

    /// Aggregate engine throughput: simulated cycles per wall second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.sim_cycles_total() as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// One-line human summary of the sweep's execution.
    pub fn timing_summary(&self) -> String {
        format!(
            "{}: {} cells on {} threads in {:.2}s (serial est. {:.2}s, {:.2}x; {:.2}M sim cycles/s)",
            self.name,
            self.cells.len(),
            self.threads,
            self.wall_ns as f64 / 1e9,
            self.serial_estimate_ns() as f64 / 1e9,
            self.speedup_vs_serial(),
            self.sim_cycles_per_sec() / 1e6,
        )
    }

    /// Serialises the report as a single-line JSON object (the
    /// `BENCH_sweep.json` schema — see DESIGN.md).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 128 * self.cells.len());
        let sharding = match (self.shards, self.epoch_cycles) {
            (Some(n), Some(w)) => format!("\"shards\":{n},\"epoch_cycles\":{w},"),
            _ => String::new(),
        };
        let sharding = match (self.cache_hits, self.cache_misses) {
            (Some(h), Some(m)) => format!("{sharding}\"cache_hits\":{h},\"cache_misses\":{m},"),
            _ => sharding,
        };
        s.push_str(&format!(
            "{{\"name\":{},\"engine\":{},\"threads\":{},{}\"grid\":[{},{}],\"wall_ms\":{},\
             \"serial_estimate_ms\":{},\"speedup_vs_serial\":{},\
             \"sim_cycles\":{},\"sim_cycles_per_sec\":{},\"cells\":[",
            json_str(&self.name),
            json_str(&self.engine),
            self.threads,
            sharding,
            self.workloads.len(),
            self.configs.len(),
            json_f64(self.wall_ns as f64 / 1e6, 3),
            json_f64(self.serial_estimate_ns() as f64 / 1e6, 3),
            json_f64(self.speedup_vs_serial(), 3),
            self.sim_cycles_total(),
            json_f64(self.sim_cycles_per_sec(), 0),
        ));
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let r = &cell.result;
            let (stall_net, stall_mem) = r.sim.offchip_decomposition();
            s.push_str(&format!(
                "{{\"workload\":{},\"config\":{},\"wall_ms\":{},\"cycles\":{},\
                 \"cycles_per_sec\":{},\"ipc\":{},\"skipped\":{},\"skipped_frac\":{},\
                 \"stall_frac\":{},\"stall_net\":{},\"stall_mem\":{}}}",
                json_str(&r.workload),
                json_str(&r.config),
                json_f64(cell.wall_ns as f64 / 1e6, 3),
                r.sim.cycles,
                json_f64(cell.sim_cycles_per_sec(), 0),
                json_f64(r.ipc(), 6),
                r.skipped_cycles,
                json_f64(cell.skipped_frac(), 4),
                json_f64(r.sim.offchip_stall_fraction(), 4),
                json_f64(stall_net, 4),
                json_f64(stall_mem, 4),
            ));
            if let Some(profile) = &r.profile {
                s.pop(); // re-open the cell object
                s.push_str(&format!(",\"windows\":{}}}", profile.series.samples.len()));
            }
            if r.component_opportunities > 0 {
                // Schema v7: serially executed cells carry the engine's
                // dispatch telemetry (cache hits and sharded cells
                // rehydrate/report 0 opportunities and stay bare).
                s.pop(); // re-open the cell object
                s.push_str(&format!(
                    ",\"component_ticks\":{},\"ticked_frac\":{}}}",
                    r.component_ticks,
                    json_f64(
                        r.component_ticks as f64 / r.component_opportunities as f64,
                        4
                    ),
                ));
            }
            if let Some(apk) = cell.allocs_per_kcycle {
                s.pop(); // re-open the cell object
                s.push_str(&format!(",\"allocs_per_kcycle\":{}}}", json_f64(apk, 3)));
            }
        }
        s.push_str("]}");
        s
    }

    /// Serialises only the engine-independent simulation outcomes — no
    /// wall clocks, no thread counts, no skipped-cycle counters. Two runs
    /// of the same grid on different engines (`--no-skip` vs default) or
    /// machines must produce byte-identical output, which is what the CI
    /// sweep-smoke step diffs.
    pub fn stats_json(&self) -> String {
        let mut s = String::with_capacity(128 + 128 * self.cells.len());
        s.push_str(&format!(
            "{{\"name\":{},\"cells\":[\n",
            json_str(&self.name)
        ));
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            let r = &cell.result;
            s.push_str(&format!(
                "{{\"workload\":{},\"config\":{},\"cycles\":{},\"instructions\":{},\
                 \"ipc\":{},\"l1_hits\":{},\"l1_misses\":{},\"outgoing\":{},\
                 \"dram_accesses\":{}}}",
                json_str(&r.workload),
                json_str(&r.config),
                r.sim.cycles,
                r.sim.instructions,
                json_f64(r.ipc(), 6),
                r.sim.l1.hits,
                r.sim.l1.misses,
                r.sim.outgoing_requests,
                r.sim.dram_accesses,
            ));
        }
        s.push_str("\n]}\n");
        s
    }

    /// Writes [`SweepReport::stats_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing `path`.
    pub fn write_stats_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.stats_json())
    }

    /// Writes (or replaces) this sweep's entry in the shared
    /// `BENCH_sweep.json` perf-trajectory file. The file keeps one sweep
    /// per line so entries can be merged without a JSON parser; see
    /// DESIGN.md for the schema.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading or writing `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut entries: Vec<String> = Vec::new();
        if let Ok(existing) = std::fs::read_to_string(path) {
            let my_key = format!("{{\"name\":{},", json_str(&self.name));
            for line in existing.lines() {
                let line = line.trim().trim_end_matches(',');
                if line.starts_with("{\"name\":") && !line.starts_with(&my_key) {
                    entries.push(line.to_string());
                }
            }
        }
        entries.push(self.to_json());
        let mut out = String::from("{\"schema\":\"fuse-sweep-v7\",\"sweeps\":[\n");
        out.push_str(&entries.join(",\n"));
        out.push_str("\n]}\n");
        std::fs::write(path, out)
    }
}

/// Fixed-precision float for JSON digests: negative zero is normalised
/// and non-finite values clamp to 0 so digests stay byte-stable. The
/// shared implementation (and its round-trip property tests) live in
/// [`fuse_obs::json::format_f64`].
fn json_f64(v: f64, prec: usize) -> String {
    fuse_obs::json::format_f64(v, prec)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuse_workloads::by_name;

    fn tiny_plan() -> SweepPlan {
        SweepPlan::new("unit", RunConfig::smoke())
            .workloads(by_name("ATAX"))
            .workloads(by_name("gaussian"))
            .presets(&[L1Preset::L1Sram, L1Preset::DyFuse])
    }

    #[test]
    fn grid_order_is_workload_major() {
        let r = tiny_plan().threads(2).run();
        assert_eq!(r.workloads, vec!["ATAX", "gaussian"]);
        assert_eq!(r.configs, vec!["L1-SRAM", "Dy-FUSE"]);
        assert_eq!(r.cells.len(), 4);
        assert_eq!(r.cell(0, 0).result.workload, "ATAX");
        assert_eq!(r.cell(0, 1).result.config, "Dy-FUSE");
        assert_eq!(r.cell(1, 0).result.workload, "gaussian");
        assert_eq!(r.row(1)[1].result.config, "Dy-FUSE");
    }

    #[test]
    fn parallel_equals_serial() {
        let plan = tiny_plan();
        let par = plan.threads(4).run();
        let ser = tiny_plan().run_serial();
        assert_eq!(par.cells.len(), ser.cells.len());
        for (p, s) in par.cells.iter().zip(ser.cells.iter()) {
            assert_eq!(
                p.result.sim, s.result.sim,
                "parallel cell diverged from serial"
            );
            assert_eq!(p.result.workload, s.result.workload);
            assert_eq!(p.result.config, s.result.config);
        }
    }

    #[test]
    fn custom_columns_run() {
        use fuse_core::config::dy_fuse_with_ratio;
        let r = SweepPlan::new("ratio", RunConfig::smoke())
            .workloads(by_name("ATAX"))
            .custom("1/2", dy_fuse_with_ratio(1, 2))
            .run();
        assert_eq!(r.configs, vec!["1/2"]);
        assert!(r.cell(0, 0).result.sim.instructions > 0);
    }

    #[test]
    fn json_roundtrip_and_merge() {
        let dir = std::env::temp_dir().join("fuse_sweep_json_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_sweep.json");
        let _ = std::fs::remove_file(&path);

        let r = tiny_plan().threads(2).run();
        let js = r.to_json();
        assert!(js.starts_with("{\"name\":\"unit\""));
        assert!(js.contains("\"cells\":["));
        assert!(js.contains("\"workload\":\"ATAX\""));

        r.write_json(&path).expect("first write");
        let mut other = r.clone();
        other.name = "other".to_string();
        other.write_json(&path).expect("second write");
        // Re-writing "unit" replaces its line, keeps "other".
        r.write_json(&path).expect("third write");
        let content = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(content.matches("{\"name\":\"unit\"").count(), 1);
        assert_eq!(content.matches("{\"name\":\"other\"").count(), 1);
        assert!(content.starts_with("{\"schema\":\"fuse-sweep-v7\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_sweep_matches_serial_and_tags_json() {
        let serial = tiny_plan().run();
        assert!(
            !serial.to_json().contains("\"shards\""),
            "serial sweeps carry no sharding fields"
        );

        let strict = tiny_plan().shards(2).run();
        for (p, s) in strict.cells.iter().zip(serial.cells.iter()) {
            assert_eq!(
                p.result.sim, s.result.sim,
                "strict sharded cell diverged from serial"
            );
        }
        assert_eq!(strict.shards, Some(2));
        assert_eq!(strict.epoch_cycles, Some(0), "strict mode is epoch 0");
        assert!(strict
            .to_json()
            .contains("\"shards\":2,\"epoch_cycles\":0,"));

        let relaxed = tiny_plan().shards(2).shard_epoch(32).run();
        assert_eq!(relaxed.epoch_cycles, Some(32));
        assert!(relaxed
            .to_json()
            .contains("\"shards\":2,\"epoch_cycles\":32,"));
        for (p, s) in relaxed.cells.iter().zip(serial.cells.iter()) {
            assert_eq!(
                p.result.sim.instructions, s.result.sim.instructions,
                "relaxed sharding must retire the same instruction stream"
            );
        }
    }

    #[test]
    fn allocs_per_kcycle_is_emitted_only_when_measured() {
        let mut r = tiny_plan().threads(2).run();
        assert!(
            !r.to_json().contains("allocs_per_kcycle"),
            "ordinary sweeps carry no allocation counts"
        );
        r.cells[0].allocs_per_kcycle = Some(1.5);
        let js = r.to_json();
        assert!(js.contains("\"allocs_per_kcycle\":1.500}"));
        assert_eq!(
            js.matches('{').count(),
            js.matches('}').count(),
            "the optional field must keep the cell object balanced"
        );
    }

    #[test]
    fn report_records_the_engine_and_skip_fractions() {
        let fast = tiny_plan().threads(2).run();
        assert_eq!(fast.engine, "skip");
        assert!(fast.to_json().contains("\"engine\":\"skip\""));
        assert!(
            fast.cells.iter().all(|c| c.skipped_frac() > 0.0),
            "smoke cells are latency-bound: every one must skip"
        );
        let slow = tiny_plan().cycle_skip(false).threads(2).run();
        assert_eq!(slow.engine, "tick");
        assert!(slow.cells.iter().all(|c| c.result.skipped_cycles == 0));
    }

    #[test]
    fn stats_json_is_engine_independent() {
        let fast = tiny_plan().threads(2).run();
        let slow = tiny_plan().cycle_skip(false).threads(2).run();
        assert_eq!(
            fast.stats_json(),
            slow.stats_json(),
            "digest must not depend on the engine"
        );
        assert!(
            !fast.stats_json().contains("wall"),
            "digest must carry no timing"
        );
    }

    #[test]
    fn metrics_window_opt_in_profiles_every_cell() {
        let plain = tiny_plan().threads(2).run();
        let prof = tiny_plan().metrics_window(2048).threads(2).run();
        for (p, q) in plain.cells.iter().zip(prof.cells.iter()) {
            assert_eq!(
                p.result.sim, q.result.sim,
                "profiling must not perturb cell statistics"
            );
            assert!(q.result.profile.is_some(), "every cell carries a profile");
            assert!(p.result.profile.is_none());
        }
        assert!(prof.to_json().contains("\"windows\":"));
        assert!(!plain.to_json().contains("\"windows\":"));
        assert_eq!(
            plain.stats_json(),
            prof.stats_json(),
            "the engine-independent digest must not change under profiling"
        );
    }

    #[test]
    fn sweep_json_carries_the_stall_decomposition() {
        let r = tiny_plan().threads(2).run();
        let js = r.to_json();
        assert!(js.contains("\"stall_frac\":"));
        assert!(js.contains("\"stall_net\":"));
        assert!(js.contains("\"stall_mem\":"));
        assert!(!js.contains("NaN") && !js.contains("inf"));
    }

    #[test]
    fn json_f64_never_emits_negative_zero_or_non_finite() {
        assert_eq!(
            json_f64(-0.00004, 4),
            "0.0000",
            "tiny negative rounds clean"
        );
        assert_eq!(json_f64(-0.0, 3), "0.000");
        assert_eq!(json_f64(f64::NAN, 2), "0.00");
        assert_eq!(json_f64(f64::NEG_INFINITY, 1), "0.0");
        assert_eq!(
            json_f64(-1.25, 2),
            "-1.25",
            "real negatives keep their sign"
        );
        assert_eq!(json_f64(2.0 / 3.0, 6), "0.666667");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\u000ay\"");
    }

    fn tmp_cache(tag: &str) -> (std::path::PathBuf, Arc<ResultCache>) {
        let dir = std::env::temp_dir().join(format!(
            "fuse_sweep_cache_test_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(ResultCache::open(&dir, None).expect("cache opens"));
        (dir, cache)
    }

    #[test]
    fn warm_sweep_is_all_hits_and_byte_identical() {
        let (dir, cache) = tmp_cache("warm");
        let cold = tiny_plan().cache(cache.clone()).run();
        assert_eq!(cold.cache_hits, Some(0));
        assert_eq!(cold.cache_misses, Some(4));
        assert!(cold
            .to_json()
            .contains("\"cache_hits\":0,\"cache_misses\":4,"));

        let warm = tiny_plan().cache(cache.clone()).run();
        assert_eq!(warm.cache_hits, Some(4), "every cell served from cache");
        assert_eq!(warm.cache_misses, Some(0));
        assert_eq!(
            cold.stats_json(),
            warm.stats_json(),
            "cached results must be byte-identical to cold ones"
        );
        for (c, w) in cold.cells.iter().zip(warm.cells.iter()) {
            assert_eq!(c.result.sim, w.result.sim);
            assert_eq!(c.result.metrics, w.result.metrics);
            assert_eq!(c.result.energy, w.result.energy);
        }

        // A second process (fresh cache handle on the same dir) stays warm.
        let reopened = Arc::new(ResultCache::open(&dir, None).expect("reopen"));
        let warm2 = tiny_plan().cache(reopened).run();
        assert_eq!(warm2.cache_hits, Some(4));
        assert_eq!(cold.stats_json(), warm2.stats_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_sweep_recomputes_only_invalidated_cells() {
        let (dir, cache) = tmp_cache("incr");
        let cold = tiny_plan().cache(cache.clone()).run();
        assert_eq!(cold.cache_misses, Some(4));
        // Invalidate exactly one cell.
        let key = super::SweepConfig::Preset(L1Preset::DyFuse)
            .key(&by_name("ATAX").unwrap(), &RunConfig::smoke());
        assert!(cache.remove(&key.hex), "cold run cached this cell");
        let incr = tiny_plan().cache(cache).run();
        assert_eq!(incr.cache_hits, Some(3));
        assert_eq!(incr.cache_misses, Some(1), "only the removed cell re-ran");
        assert_eq!(cold.stats_json(), incr.stats_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_plans_bypass_the_cache() {
        let (dir, cache) = tmp_cache("obs");
        let profiled = tiny_plan().cache(cache.clone()).metrics_window(2048).run();
        assert_eq!(profiled.cache_hits, None, "observer disables the cache");
        assert_eq!(cache.stats().entries, 0, "nothing was recorded");
        assert!(!profiled.to_json().contains("cache_hits"));
        assert!(
            profiled.cells.iter().all(|c| c.result.profile.is_some()),
            "the observer still ran"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_plan_is_empty() {
        let p = SweepPlan::new("empty", RunConfig::smoke());
        assert!(p.is_empty());
        let r = p.run();
        assert!(r.cells.is_empty());
        assert_eq!(r.speedup_vs_serial(), 0.0_f64.max(r.speedup_vs_serial()));
    }
}
