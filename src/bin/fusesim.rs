//! `fusesim` — command-line driver for the FUSE reproduction.
//!
//! Runs any (workload, L1 configuration) pair on either machine preset and
//! prints the full metric set, without writing a line of Rust:
//!
//! ```console
//! $ fusesim run --workload ATAX --config Dy-FUSE
//! $ fusesim run --workload GEMM --config L1-SRAM --volta --scale 2
//! $ fusesim compare --workload BICG
//! $ fusesim list
//! ```

use std::process::ExitCode;

use fuse::core::config::L1Preset;
use fuse::runner::{run_workload, RunConfig, RunResult};
use fuse::workloads::{all_workloads, by_name};

const USAGE: &str = "\
fusesim — FUSE (HPCA 2019) reproduction driver

USAGE:
    fusesim list                         list workloads and L1 configurations
    fusesim run [OPTIONS]                run one (workload, config) pair
    fusesim compare [OPTIONS]            run every L1 configuration on one workload

OPTIONS:
    --workload <NAME>    workload name from Table II (default: ATAX)
    --config <NAME>      L1 configuration (default: Dy-FUSE)
    --volta              use the Fig. 19 Volta-class machine
    --scale <F>          instruction-budget multiplier (default 1.0)
    --quiet              print only the one-line summary
";

#[derive(Debug)]
struct Args {
    command: String,
    workload: String,
    config: String,
    volta: bool,
    scale: f64,
    quiet: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let command = argv.next().unwrap_or_else(|| "help".to_string());
    let mut args = Args {
        command,
        workload: "ATAX".to_string(),
        config: "Dy-FUSE".to_string(),
        volta: false,
        scale: 1.0,
        quiet: false,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--workload" => {
                args.workload = argv.next().ok_or("--workload needs a value")?;
            }
            "--config" => {
                args.config = argv.next().ok_or("--config needs a value")?;
            }
            "--volta" => args.volta = true,
            "--quiet" => args.quiet = true,
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                if args.scale <= 0.0 {
                    return Err("scale must be positive".to_string());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn preset_by_name(name: &str) -> Option<L1Preset> {
    L1Preset::ALL.into_iter().find(|p| p.name().eq_ignore_ascii_case(name))
}

fn run_config(args: &Args) -> RunConfig {
    let mut rc = if args.volta { RunConfig::volta() } else { RunConfig::standard() };
    rc.ops_scale *= args.scale;
    rc
}

fn print_result(r: &RunResult, quiet: bool) {
    println!(
        "{} / {}: IPC {:.4}  miss {:.3}  outgoing {}  cycles {}  L1 energy {:.0} nJ",
        r.workload,
        r.config,
        r.ipc(),
        r.miss_rate(),
        r.outgoing_requests(),
        r.sim.cycles,
        r.l1_energy_nj()
    );
    if quiet {
        return;
    }
    let s = &r.sim;
    println!("  instructions {}   APKI {:.1}", s.instructions, s.apki());
    println!(
        "  L1: hits {}  misses {}  merges {}  bypasses {}  writebacks {}",
        s.l1.hits, s.l1.misses, s.l1.mshr_merges, s.l1.bypasses, s.l1.writebacks
    );
    println!(
        "  L2: hits {}  misses {}   DRAM: accesses {}  row hits {}",
        s.l2.hits, s.l2.misses, s.dram_accesses, s.dram_row_hits
    );
    println!(
        "  off-chip read residency: net {:.0} cyc, L2+DRAM {:.0} cyc ({} reads)",
        s.avg_net_cycles(),
        s.avg_mem_cycles(),
        s.completed_reads
    );
    let m = &r.metrics;
    if m.tag_searches > 0 || m.migrations_to_stt > 0 || m.accuracy.total() > 0 {
        println!(
            "  FUSE: migrations SRAM->STT {}  STT->SRAM {}  WORO evictions {}  bypassed {}+{}",
            m.migrations_to_stt,
            m.migrations_to_sram,
            m.woro_evictions,
            m.bypassed_loads,
            m.bypassed_stores
        );
        println!(
            "  stalls: STT-busy {}  tag-queue-full {}  flushes {}  avg tag search {:.2} cyc",
            m.stt_busy_rejections,
            m.tag_queue_full_rejections,
            m.tq_flushes,
            m.avg_tag_search_cycles()
        );
        if m.accuracy.total() > 0 {
            println!(
                "  predictor: {} true / {} false / {} neutral over {} graded evictions",
                m.accuracy.trues, m.accuracy.falses, m.accuracy.neutrals, m.accuracy.total()
            );
        }
    }
    let e = &r.energy;
    println!(
        "  energy: total {:.0} nJ (L1 {:.0}, L2 {:.0}, net {:.0}, DRAM {:.0}, compute {:.0})",
        e.total_nj(),
        e.l1_nj(),
        e.l2_nj,
        e.network_nj,
        e.dram_nj,
        e.compute_nj
    );
}

fn cmd_list() {
    println!("workloads (Table II):");
    for w in all_workloads() {
        println!(
            "  {:<8} {:<8} APKI {:>5.1}  paper bypass {:>4.2}  irregularity {:.2}",
            w.name, w.suite.to_string(), w.apki, w.paper_bypass_ratio, w.irregularity
        );
    }
    println!("\nL1 configurations (Table I):");
    for p in L1Preset::ALL {
        println!("  {}", p.name());
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let spec = by_name(&args.workload)
        .ok_or_else(|| format!("unknown workload {:?} (try `fusesim list`)", args.workload))?;
    let preset = preset_by_name(&args.config)
        .ok_or_else(|| format!("unknown config {:?} (try `fusesim list`)", args.config))?;
    let r = run_workload(&spec, preset, &run_config(args));
    print_result(&r, args.quiet);
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let spec = by_name(&args.workload)
        .ok_or_else(|| format!("unknown workload {:?} (try `fusesim list`)", args.workload))?;
    let rc = run_config(args);
    let mut base = None;
    println!(
        "{:<10} {:>9} {:>8} {:>11} {:>10} {:>9}",
        "config", "IPC", "miss", "outgoing", "L1 nJ", "vs base"
    );
    for preset in L1Preset::ALL {
        let r = run_workload(&spec, preset, &rc);
        let b = *base.get_or_insert(r.ipc());
        println!(
            "{:<10} {:>9.4} {:>8.3} {:>11} {:>10.0} {:>8.2}x",
            preset.name(),
            r.ipc(),
            r.miss_rate(),
            r.outgoing_requests(),
            r.l1_energy_nj(),
            r.ipc() / b
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        _ => {
            println!("{USAGE}");
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, String> {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_run_flags() {
        let a = args(&["run", "--workload", "GEMM", "--config", "By-NVM", "--volta", "--scale", "2"])
            .unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.workload, "GEMM");
        assert_eq!(a.config, "By-NVM");
        assert!(a.volta);
        assert_eq!(a.scale, 2.0);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_scale() {
        assert!(args(&["run", "--bogus"]).is_err());
        assert!(args(&["run", "--scale", "0"]).is_err());
        assert!(args(&["run", "--scale", "x"]).is_err());
        assert!(args(&["run", "--workload"]).is_err());
    }

    #[test]
    fn preset_lookup_is_case_insensitive() {
        assert_eq!(preset_by_name("dy-fuse"), Some(L1Preset::DyFuse));
        assert_eq!(preset_by_name("L1-SRAM"), Some(L1Preset::L1Sram));
        assert_eq!(preset_by_name("nope"), None);
    }
}
