//! `fusesim` — command-line driver for the FUSE reproduction.
//!
//! Runs any (workload, L1 configuration) pair on either machine preset and
//! prints the full metric set, without writing a line of Rust:
//!
//! ```console
//! $ fusesim run --workload ATAX --config Dy-FUSE
//! $ fusesim run --workload GEMM --config L1-SRAM --volta --scale 2
//! $ fusesim compare --workload BICG
//! $ fusesim sweep --workloads ATAX,BICG,GEMM --configs fig13 --json BENCH_sweep.json
//! $ fusesim list
//! ```
//!
//! `compare` and `sweep` execute their grids on the parallel sweep engine
//! ([`fuse::sweep::SweepPlan`]); results are identical to serial runs,
//! only faster.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use fuse::core::config::L1Preset;
use fuse::runner::{
    preset_by_name, preset_cell_key, run_workload, RunConfig, RunResult, ServeBackend,
};
use fuse::serve::proto::CellSpec;
use fuse::serve::{
    auth, client, ClientConfig, Endpoint, Listener, ResultCache, ServeOptions, Server,
    ServerConfig, VerifyOutcome,
};
use fuse::sweep::SweepPlan;
use fuse::workloads::{all_workloads, by_name};

const USAGE: &str = "\
fusesim — FUSE (HPCA 2019) reproduction driver

USAGE:
    fusesim list                         list workloads and L1 configurations
    fusesim run [OPTIONS]                run one (workload, config) pair
    fusesim compare [OPTIONS]            run every L1 configuration on one workload
    fusesim sweep [OPTIONS]              run a (workloads x configs) grid in parallel
    fusesim check [OPTIONS]              differential-test the engine against the
                                         fuse-check reference-model oracle (lockstep
                                         grid + seeded fuzzing; exits non-zero on any
                                         divergence)
    fusesim cache <ACTION> [OPTIONS]     inspect or maintain a result cache
                                         (--cache-dir). ACTION is one of:
                                           stats            print entry/byte/hit counters
                                           verify           re-digest every entry; corrupt
                                                            ones are quarantined and fail
                                                            the command
                                           gc --max-bytes N evict LRU entries over N bytes
                                           rm <DIGEST>      invalidate one cell by digest
    fusesim serve [OPTIONS]              serve batched sweep requests over a Unix
                                         socket (--socket) and/or TCP (--listen,
                                         requires --auth-token) backed by a result
                                         cache (--cache-dir); overlapping requests
                                         for the same cell share one simulation, a
                                         full job queue sheds with BUSY, and worker
                                         panics never hang clients
    fusesim submit [CELLS] [OPTIONS]     client for `fusesim serve`: send a batch of
                                         <workload>/<config> cells (or --workloads x
                                         --configs), --ping, --server-stats, or
                                         --shutdown over --socket or --addr; retries
                                         transient failures and honors BUSY backoff

OPTIONS:
    --workload <NAME>    workload name from Table II (default: ATAX)
    --config <NAME>      L1 configuration (default: Dy-FUSE)
    --workloads <LIST>   comma-separated workloads, or `all` (sweep; default all)
    --configs <LIST>     comma-separated configs, `all`, or `fig13` (sweep; default fig13)
    --threads <N>        sweep worker threads (default: all cores)
    --shards <N>         shard one simulation across N worker threads
                         (run/compare/sweep; strict mode — statistics stay
                         bitwise identical to serial. With `check`, audits
                         the relaxed sharded engine against the oracle over
                         the fuzz seeds instead of the lockstep engines)
    --shard-epoch <W>    relaxed-mode epoch window in cycles (requires
                         --shards; fills synchronize at epoch boundaries,
                         so statistics may differ from serial — see
                         DESIGN.md §3g. check: default 32)
    --name <NAME>        sweep entry name used as the BENCH_sweep.json
                         merge key (sweep; default cli-sweep)
    --json <PATH>        append the sweep entry to a BENCH_sweep.json file
    --stats-json <PATH>  write the engine-independent stats digest (sweep)
    --metrics-out <PATH> write the windowed stall-breakdown profile as JSON
                         (run; enables the cycle-attribution profiler)
    --trace-out <PATH>   write a Chrome trace_event JSON — load it in
                         Perfetto or about:tracing (run; enables tracing)
    --metrics-window <N> profiling window in cycles (default 4096; with
                         `sweep`, opts every cell into profiling)
    --trace-capacity <N> event-ring capacity (default 65536; oldest events
                         are overwritten once full)
    --no-skip            disable event-driven cycle skipping (slow tick
                         engine; statistics are bitwise identical)
    --no-active-set      disable active-set tick scheduling, ticking every
                         component every busy cycle (statistics are bitwise
                         identical; see DESIGN.md §3i)
    --seeds <N>          fuzz seeds to run (check; default 64; 0 skips fuzzing)
    --seed-base <N>      first fuzz seed (check; default 0)
    --skip-grid          skip the workload-grid lockstep pass (check)
    --repro-dir <PATH>   where minimized repros of fuzz failures are written
                         (check; default tests/repros)
    --volta              use the Fig. 19 Volta-class machine
    --scale <F>          instruction-budget multiplier (default 1.0)
    --quiet              print only the one-line summary
    --cache-dir <PATH>   content-addressed result cache (run/compare/sweep/
                         cache/serve): cells whose key is already recorded
                         return without simulating; results are bitwise
                         identical to cold runs. Incompatible with the
                         profiler/tracer flags — observed runs are never
                         cached
    --cache-max-bytes <N> byte budget for --cache-dir; least-recently-used
                         entries are evicted over budget
    --max-bytes <N>      target size for `cache gc`
    --socket <PATH>      Unix socket path (serve/submit)
    --listen <ADDR>      TCP listen address, e.g. 127.0.0.1:7070 — port 0
                         picks a free port, printed on start (serve;
                         requires --auth-token; may be combined with
                         --socket to serve both transports)
    --addr <HOST:PORT>   TCP server address (submit; alternative to --socket)
    --auth-token <TOK>   shared token: clients must open with `AUTH <TOK>`
                         (serve over TCP: required; submit: sent first)
    --workers <N>        simulation worker threads (serve; default 2)
    --queue <N>          bounded job-queue capacity (serve; default 64)
    --max-conns <N>      concurrent connection limit; extra connections
                         get `BUSY retry-after=<ms>` (serve; default 64)
    --io-timeout-ms <N>  per-connection read/write deadline so dead peers
                         cannot pin handler threads (serve; default 30000)
    --timeout-ms <N>     per-attempt connect/read/write deadline (submit;
                         default 30000)
    --retries <N>        extra attempts with exponential backoff on
                         transient failures and BUSY (submit; default 3)
    --ping               liveness probe (submit)
    --server-stats       query cache counters (submit)
    --shutdown           stop the server after in-flight work (submit)
";

#[derive(Debug)]
struct Args {
    command: String,
    workload: String,
    config: String,
    workloads: String,
    configs: String,
    threads: Option<usize>,
    shards: Option<usize>,
    shard_epoch: Option<u64>,
    name: Option<String>,
    json: Option<String>,
    stats_json: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    metrics_window: Option<u64>,
    trace_capacity: Option<usize>,
    no_skip: bool,
    no_active_set: bool,
    volta: bool,
    scale: f64,
    quiet: bool,
    seeds: u64,
    seed_base: u64,
    skip_grid: bool,
    repro_dir: String,
    cache_dir: Option<String>,
    cache_max_bytes: Option<u64>,
    max_bytes: Option<u64>,
    socket: Option<String>,
    listen: Option<String>,
    addr: Option<String>,
    auth_token: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    max_conns: Option<usize>,
    io_timeout_ms: Option<u64>,
    timeout_ms: Option<u64>,
    retries: Option<u32>,
    ping: bool,
    server_stats: bool,
    shutdown: bool,
    /// Non-flag tokens after the command: the `cache` action (+ digest
    /// for `rm`) or `submit` cell tokens.
    positionals: Vec<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let command = argv.next().unwrap_or_else(|| "help".to_string());
    let mut args = Args {
        command,
        workload: "ATAX".to_string(),
        config: "Dy-FUSE".to_string(),
        workloads: "all".to_string(),
        configs: "fig13".to_string(),
        threads: None,
        shards: None,
        shard_epoch: None,
        name: None,
        json: None,
        stats_json: None,
        metrics_out: None,
        trace_out: None,
        metrics_window: None,
        trace_capacity: None,
        no_skip: false,
        no_active_set: false,
        volta: false,
        scale: 1.0,
        quiet: false,
        seeds: 64,
        seed_base: 0,
        skip_grid: false,
        repro_dir: "tests/repros".to_string(),
        cache_dir: None,
        cache_max_bytes: None,
        max_bytes: None,
        socket: None,
        listen: None,
        addr: None,
        auth_token: None,
        workers: None,
        queue: None,
        max_conns: None,
        io_timeout_ms: None,
        timeout_ms: None,
        retries: None,
        ping: false,
        server_stats: false,
        shutdown: false,
        positionals: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--workload" => {
                args.workload = argv.next().ok_or("--workload needs a value")?;
            }
            "--config" => {
                args.config = argv.next().ok_or("--config needs a value")?;
            }
            "--workloads" => {
                args.workloads = argv.next().ok_or("--workloads needs a value")?;
            }
            "--configs" => {
                args.configs = argv.next().ok_or("--configs needs a value")?;
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(n);
            }
            "--shards" => {
                let v = argv.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad shard count {v:?}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                args.shards = Some(n);
            }
            "--shard-epoch" => {
                let v = argv.next().ok_or("--shard-epoch needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad epoch window {v:?}"))?;
                if n == 0 {
                    return Err("--shard-epoch must be at least 1".to_string());
                }
                args.shard_epoch = Some(n);
            }
            "--name" => {
                args.name = Some(argv.next().ok_or("--name needs a value")?);
            }
            "--json" => {
                args.json = Some(argv.next().ok_or("--json needs a value")?);
            }
            "--stats-json" => {
                args.stats_json = Some(argv.next().ok_or("--stats-json needs a value")?);
            }
            "--metrics-out" => {
                args.metrics_out = Some(argv.next().ok_or("--metrics-out needs a value")?);
            }
            "--trace-out" => {
                args.trace_out = Some(argv.next().ok_or("--trace-out needs a value")?);
            }
            "--metrics-window" => {
                let v = argv.next().ok_or("--metrics-window needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad window {v:?}"))?;
                if n == 0 {
                    return Err("--metrics-window must be at least 1".to_string());
                }
                args.metrics_window = Some(n);
            }
            "--trace-capacity" => {
                let v = argv.next().ok_or("--trace-capacity needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad capacity {v:?}"))?;
                if n == 0 {
                    return Err("--trace-capacity must be at least 1".to_string());
                }
                args.trace_capacity = Some(n);
            }
            "--seeds" => {
                let v = argv.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|_| format!("bad seed count {v:?}"))?;
            }
            "--seed-base" => {
                let v = argv.next().ok_or("--seed-base needs a value")?;
                args.seed_base = v.parse().map_err(|_| format!("bad seed base {v:?}"))?;
            }
            "--skip-grid" => args.skip_grid = true,
            "--repro-dir" => {
                args.repro_dir = argv.next().ok_or("--repro-dir needs a value")?;
            }
            "--no-skip" => args.no_skip = true,
            "--no-active-set" => args.no_active_set = true,
            "--volta" => args.volta = true,
            "--quiet" => args.quiet = true,
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                if args.scale <= 0.0 {
                    return Err("scale must be positive".to_string());
                }
            }
            "--cache-dir" => {
                args.cache_dir = Some(argv.next().ok_or("--cache-dir needs a value")?);
            }
            "--cache-max-bytes" => {
                let v = argv.next().ok_or("--cache-max-bytes needs a value")?;
                args.cache_max_bytes =
                    Some(v.parse().map_err(|_| format!("bad byte budget {v:?}"))?);
            }
            "--max-bytes" => {
                let v = argv.next().ok_or("--max-bytes needs a value")?;
                args.max_bytes = Some(v.parse().map_err(|_| format!("bad byte target {v:?}"))?);
            }
            "--socket" => {
                args.socket = Some(argv.next().ok_or("--socket needs a value")?);
            }
            "--listen" => {
                args.listen = Some(argv.next().ok_or("--listen needs a value")?);
            }
            "--addr" => {
                args.addr = Some(argv.next().ok_or("--addr needs a value")?);
            }
            "--auth-token" => {
                args.auth_token = Some(argv.next().ok_or("--auth-token needs a value")?);
            }
            "--max-conns" => {
                let v = argv.next().ok_or("--max-conns needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad connection limit {v:?}"))?;
                if n == 0 {
                    return Err("--max-conns must be at least 1".to_string());
                }
                args.max_conns = Some(n);
            }
            "--io-timeout-ms" => {
                let v = argv.next().ok_or("--io-timeout-ms needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad deadline {v:?}"))?;
                if n == 0 {
                    return Err("--io-timeout-ms must be at least 1".to_string());
                }
                args.io_timeout_ms = Some(n);
            }
            "--timeout-ms" => {
                let v = argv.next().ok_or("--timeout-ms needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad deadline {v:?}"))?;
                if n == 0 {
                    return Err("--timeout-ms must be at least 1".to_string());
                }
                args.timeout_ms = Some(n);
            }
            "--retries" => {
                let v = argv.next().ok_or("--retries needs a value")?;
                args.retries = Some(v.parse().map_err(|_| format!("bad retry count {v:?}"))?);
            }
            "--workers" => {
                let v = argv.next().ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                args.workers = Some(n);
            }
            "--queue" => {
                let v = argv.next().ok_or("--queue needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad queue capacity {v:?}"))?;
                if n == 0 {
                    return Err("--queue must be at least 1".to_string());
                }
                args.queue = Some(n);
            }
            "--ping" => args.ping = true,
            "--server-stats" => args.server_stats = true,
            "--shutdown" => args.shutdown = true,
            other if !other.starts_with("--") => {
                args.positionals.push(other.to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !args.positionals.is_empty() && !matches!(args.command.as_str(), "cache" | "submit") {
        return Err(format!(
            "unexpected argument {:?} (only `cache` and `submit` take positional arguments)",
            args.positionals[0]
        ));
    }
    Ok(args)
}

fn run_config(args: &Args) -> Result<RunConfig, String> {
    let mut rc = if args.volta {
        RunConfig::volta()
    } else {
        RunConfig::standard()
    };
    rc.ops_scale *= args.scale;
    rc.skip = !args.no_skip;
    rc.active_set = !args.no_active_set;
    if args.metrics_out.is_some() || args.metrics_window.is_some() {
        rc.metrics_window = Some(args.metrics_window.unwrap_or(4096));
    }
    if args.trace_out.is_some() || args.trace_capacity.is_some() {
        rc.trace_capacity = Some(args.trace_capacity.unwrap_or(65536));
    }
    if args.shards.is_some() {
        if rc.metrics_window.is_some() || rc.trace_capacity.is_some() {
            return Err(
                "--shards cannot be combined with --metrics-out/--metrics-window or \
                 --trace-out/--trace-capacity: the profiler and tracer observe the \
                 serial engine only"
                    .to_string(),
            );
        }
        rc.shards = args.shards;
        rc.shard_epoch = args.shard_epoch;
        if let Some(cfg) = rc.shard_config() {
            cfg.validate(rc.gpu.num_sms)?;
        }
    } else if args.shard_epoch.is_some() {
        return Err("--shard-epoch requires --shards".to_string());
    }
    if args.cache_dir.is_some() && rc.observed() {
        return Err(
            "--cache-dir cannot be combined with --metrics-out/--metrics-window or \
             --trace-out/--trace-capacity: profiles and traces are not part of a \
             cached record, so a hit would silently drop them"
                .to_string(),
        );
    }
    Ok(rc)
}

/// Opens the cache selected by `--cache-dir`/`--cache-max-bytes`, if any.
fn open_cache(args: &Args) -> Result<Option<Arc<ResultCache>>, String> {
    match &args.cache_dir {
        Some(dir) => ResultCache::open(Path::new(dir), args.cache_max_bytes)
            .map(|c| Some(Arc::new(c)))
            .map_err(|e| format!("opening cache {dir}: {e}")),
        None => Ok(None),
    }
}

fn print_result(r: &RunResult, quiet: bool) {
    println!(
        "{} / {}: IPC {:.4}  miss {:.3}  outgoing {}  cycles {}  L1 energy {:.0} nJ",
        r.workload,
        r.config,
        r.ipc(),
        r.miss_rate(),
        r.outgoing_requests(),
        r.sim.cycles,
        r.l1_energy_nj()
    );
    if quiet {
        return;
    }
    let s = &r.sim;
    println!("  instructions {}   APKI {:.1}", s.instructions, s.apki());
    println!(
        "  L1: hits {}  misses {}  merges {}  bypasses {}  writebacks {}",
        s.l1.hits, s.l1.misses, s.l1.mshr_merges, s.l1.bypasses, s.l1.writebacks
    );
    println!(
        "  L2: hits {}  misses {}   DRAM: accesses {}  row hits {}",
        s.l2.hits, s.l2.misses, s.dram_accesses, s.dram_row_hits
    );
    println!(
        "  off-chip read residency: net {:.0} cyc, L2+DRAM {:.0} cyc ({} reads)",
        s.avg_net_cycles(),
        s.avg_mem_cycles(),
        s.completed_reads
    );
    let m = &r.metrics;
    if m.tag_searches > 0 || m.migrations_to_stt > 0 || m.accuracy.total() > 0 {
        println!(
            "  FUSE: migrations SRAM->STT {}  STT->SRAM {}  WORO evictions {}  bypassed {}+{}",
            m.migrations_to_stt,
            m.migrations_to_sram,
            m.woro_evictions,
            m.bypassed_loads,
            m.bypassed_stores
        );
        println!(
            "  stalls: STT-busy {}  tag-queue-full {}  flushes {}  avg tag search {:.2} cyc",
            m.stt_busy_rejections,
            m.tag_queue_full_rejections,
            m.tq_flushes,
            m.avg_tag_search_cycles()
        );
        if m.accuracy.total() > 0 {
            println!(
                "  predictor: {} true / {} false / {} neutral over {} graded evictions",
                m.accuracy.trues,
                m.accuracy.falses,
                m.accuracy.neutrals,
                m.accuracy.total()
            );
        }
    }
    let e = &r.energy;
    println!(
        "  energy: total {:.0} nJ (L1 {:.0}, L2 {:.0}, net {:.0}, DRAM {:.0}, compute {:.0})",
        e.total_nj(),
        e.l1_nj(),
        e.l2_nj,
        e.network_nj,
        e.dram_nj,
        e.compute_nj
    );
}

fn cmd_list() {
    println!("workloads (Table II):");
    for w in all_workloads() {
        println!(
            "  {:<8} {:<8} APKI {:>5.1}  paper bypass {:>4.2}  irregularity {:.2}",
            w.name,
            w.suite.to_string(),
            w.apki,
            w.paper_bypass_ratio,
            w.irregularity
        );
    }
    println!("\nL1 configurations (Table I):");
    for p in L1Preset::ALL {
        println!("  {}", p.name());
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let spec = by_name(&args.workload)
        .ok_or_else(|| format!("unknown workload {:?} (try `fusesim list`)", args.workload))?;
    let preset = preset_by_name(&args.config)
        .ok_or_else(|| format!("unknown config {:?} (try `fusesim list`)", args.config))?;
    let rc = run_config(args)?;
    let r = match open_cache(args)? {
        Some(cache) => {
            let key = preset_cell_key(&spec, preset, &rc);
            match cache.get(&key) {
                Some(rec) => {
                    if !args.quiet {
                        println!("cache hit {} (no simulation run)", key.hex);
                    }
                    RunResult::from_record(&rec)
                }
                None => {
                    let r = run_workload(&spec, preset, &rc);
                    cache
                        .insert(&key, r.to_record())
                        .map_err(|e| format!("recording {}: {e}", key.hex))?;
                    r
                }
            }
        }
        None => run_workload(&spec, preset, &rc),
    };
    print_result(&r, args.quiet);
    if let Some(path) = &args.metrics_out {
        let profile = r
            .profile
            .as_ref()
            .expect("--metrics-out enables the profiler");
        std::fs::write(path, profile.to_json(&r.workload, &r.config))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {} profiling windows to {path}",
            profile.series.samples.len()
        );
    }
    if let Some(path) = &args.trace_out {
        let trace = r.trace.as_ref().expect("--trace-out enables the tracer");
        std::fs::write(path, trace.chrome_trace_json())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {} trace events to {path} (load in Perfetto or about:tracing)",
            trace.len()
        );
        if trace.dropped() > 0 {
            println!(
                "  note: ring filled; {} oldest events were overwritten (raise --trace-capacity)",
                trace.dropped()
            );
        }
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let spec = by_name(&args.workload)
        .ok_or_else(|| format!("unknown workload {:?} (try `fusesim list`)", args.workload))?;
    let mut plan = SweepPlan::new("compare", run_config(args)?)
        .workloads([spec])
        .presets(&L1Preset::ALL);
    if let Some(t) = args.threads {
        plan = plan.threads(t);
    }
    if let Some(cache) = open_cache(args)? {
        plan = plan.cache(cache);
    }
    let report = plan.run();
    let mut base = None;
    println!(
        "{:<10} {:>9} {:>8} {:>11} {:>10} {:>9}",
        "config", "IPC", "miss", "outgoing", "L1 nJ", "vs base"
    );
    for cell in report.row(0) {
        let r = &cell.result;
        let b = *base.get_or_insert(r.ipc());
        println!(
            "{:<10} {:>9.4} {:>8.3} {:>11} {:>10.0} {:>8.2}x",
            r.config,
            r.ipc(),
            r.miss_rate(),
            r.outgoing_requests(),
            r.l1_energy_nj(),
            r.ipc() / b
        );
    }
    if !args.quiet {
        println!("{}", report.timing_summary());
    }
    Ok(())
}

fn parse_sweep_workloads(list: &str) -> Result<Vec<fuse::workloads::spec::WorkloadSpec>, String> {
    if list.eq_ignore_ascii_case("all") {
        return Ok(all_workloads());
    }
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| by_name(name).ok_or_else(|| format!("unknown workload {name:?}")))
        .collect()
}

fn parse_sweep_presets(list: &str) -> Result<Vec<L1Preset>, String> {
    if list.eq_ignore_ascii_case("all") {
        return Ok(L1Preset::ALL.to_vec());
    }
    if list.eq_ignore_ascii_case("fig13") {
        return Ok(L1Preset::FIG13.to_vec());
    }
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| preset_by_name(name).ok_or_else(|| format!("unknown config {name:?}")))
        .collect()
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let workloads = parse_sweep_workloads(&args.workloads)?;
    let presets = parse_sweep_presets(&args.configs)?;
    if workloads.is_empty() || presets.is_empty() {
        return Err("sweep needs at least one workload and one config".to_string());
    }
    let name = args.name.as_deref().unwrap_or("cli-sweep");
    let mut plan = SweepPlan::new(name, run_config(args)?)
        .workloads(workloads)
        .presets(&presets);
    if let Some(t) = args.threads {
        plan = plan.threads(t);
    }
    if let Some(cache) = open_cache(args)? {
        plan = plan.cache(cache);
    }
    let report = plan.run();

    print!("{:<10}", "workload");
    for c in &report.configs {
        print!(" {c:>10}");
    }
    println!(" (IPC)");
    for (wi, w) in report.workloads.iter().enumerate() {
        print!("{w:<10}");
        for cell in report.row(wi) {
            print!(" {:>10.4}", cell.result.ipc());
        }
        println!();
    }
    println!("{}", report.timing_summary());
    if let (Some(h), Some(m)) = (report.cache_hits, report.cache_misses) {
        println!("cache: {h} hit(s), {m} miss(es)");
    }
    if let Some(path) = &args.json {
        report
            .write_json(std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote sweep entry to {path}");
    }
    if let Some(path) = &args.stats_json {
        report
            .write_stats_json(std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote stats digest to {path}");
    }
    Ok(())
}

/// Differential verification: a lockstep pass over the workload grid,
/// then seeded fuzzing over adversarial small machines. Any divergence
/// is minimized with the shrinker, written as a `.repro`, and fails the
/// command.
fn cmd_check(args: &Args) -> Result<(), String> {
    use fuse::check::{repro, run_case, run_case_sharded, shrink, FuzzSpec};

    let mut failures = 0usize;

    if !args.skip_grid {
        let rc = RunConfig {
            ops_scale: RunConfig::smoke().ops_scale * args.scale,
            ..RunConfig::smoke()
        };
        let presets = [L1Preset::L1Sram, L1Preset::DyFuse];
        let workloads = all_workloads();
        println!(
            "lockstep grid: {} workloads x {} presets, both engines, oracle attached",
            workloads.len(),
            presets.len()
        );
        for w in &workloads {
            for preset in presets {
                let report = fuse::runner::lockstep_workload(w, preset, &rc);
                if report.ok() {
                    if !args.quiet {
                        println!(
                            "  ok   {:<8} {:<8} ({} events)",
                            w.name,
                            preset.name(),
                            report.events_compared
                        );
                    }
                } else {
                    failures += 1;
                    println!("  FAIL {:<8} {:<8}", w.name, preset.name());
                    for v in &report.violations {
                        println!("       {v}");
                    }
                }
            }
        }
    }

    if args.seeds > 0 {
        // With --shards, audit the relaxed sharded engine under the
        // oracle; otherwise run the classic two-engine lockstep diff.
        let sharding = args.shards.map(|n| (n, args.shard_epoch.unwrap_or(32)));
        match sharding {
            Some((shards, epoch)) => println!(
                "fuzz: {} seeds starting at {}, adversarial machines, \
                 sharded relaxed engine ({shards} shards, epoch {epoch}) under the oracle",
                args.seeds, args.seed_base
            ),
            None => println!(
                "fuzz: {} seeds starting at {}, adversarial machines, both engines",
                args.seeds, args.seed_base
            ),
        }
        for seed in args.seed_base..args.seed_base + args.seeds {
            let spec = FuzzSpec::from_seed(seed);
            let (ok, first_violation, detail) = match sharding {
                Some((shards, epoch)) => {
                    let r = run_case_sharded(&spec, shards, epoch);
                    let detail = format!("{} shards", r.shards);
                    (r.ok(), r.violations.first().cloned(), detail)
                }
                None => {
                    let r = run_case(&spec);
                    let detail = format!("{} events", r.events_compared);
                    (r.ok(), r.violations.first().cloned(), detail)
                }
            };
            if ok {
                if !args.quiet {
                    println!("  ok   seed {seed} ({detail})");
                }
                continue;
            }
            failures += 1;
            println!(
                "  FAIL seed {seed}: {}",
                first_violation.as_deref().unwrap_or("unknown violation")
            );
            let fails = |s: &FuzzSpec| match sharding {
                Some((shards, epoch)) => !run_case_sharded(s, shards, epoch).ok(),
                None => !run_case(s).ok(),
            };
            let minimal = shrink(&spec, fails, 200);
            let reason = match sharding {
                Some((shards, epoch)) => run_case_sharded(&minimal, shards, epoch)
                    .violations
                    .first()
                    .cloned(),
                None => run_case(&minimal).violations.first().cloned(),
            }
            .unwrap_or_else(|| "shrunk case no longer fails (flaky?)".to_string());
            let text = repro::to_text(&minimal, Some(&reason));
            std::fs::create_dir_all(&args.repro_dir)
                .map_err(|e| format!("creating {}: {e}", args.repro_dir))?;
            let kind = if sharding.is_some() {
                "sharded"
            } else {
                "fuzz"
            };
            let path = format!("{}/{kind}-seed-{seed}.repro", args.repro_dir);
            std::fs::write(&path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            println!("       minimized repro written to {path}:");
            for line in text.lines() {
                println!("       {line}");
            }
        }
    }

    if failures > 0 {
        Err(format!("{failures} divergence(s) found"))
    } else {
        println!("all checks passed: zero divergences");
        Ok(())
    }
}

/// `fusesim cache <stats|verify|gc|rm>` — inspect and maintain a
/// `--cache-dir` without running any simulation.
fn cmd_cache(args: &Args) -> Result<(), String> {
    let cache = open_cache(args)?.ok_or("cache needs --cache-dir")?;
    let action = args
        .positionals
        .first()
        .map(String::as_str)
        .unwrap_or("stats");
    match action {
        "stats" => {
            let s = cache.stats();
            println!(
                "entries {}  bytes {}  hits {}  misses {}  inserts {}  evictions {}  quarantined {}",
                s.entries, s.bytes, s.hits, s.misses, s.inserts, s.evictions, s.quarantined
            );
            Ok(())
        }
        "verify" => {
            let outcomes = cache.verify();
            let mut corrupt = 0usize;
            for o in &outcomes {
                match o {
                    VerifyOutcome::Ok { digest } => {
                        if !args.quiet {
                            println!("  ok      {digest}");
                        }
                    }
                    VerifyOutcome::Corrupt { digest, reason } => {
                        corrupt += 1;
                        println!("  CORRUPT {digest}: {reason} (quarantined)");
                    }
                }
            }
            println!("{} entries verified, {corrupt} corrupt", outcomes.len());
            if corrupt > 0 {
                Err(format!("{corrupt} corrupt entr(ies) quarantined"))
            } else {
                Ok(())
            }
        }
        "gc" => {
            let target = args.max_bytes.ok_or("cache gc needs --max-bytes")?;
            let evicted = cache.gc(target);
            let s = cache.stats();
            println!(
                "evicted {evicted} entr(ies); {} entries, {} bytes remain",
                s.entries, s.bytes
            );
            Ok(())
        }
        "rm" => {
            let digest = args
                .positionals
                .get(1)
                .ok_or("cache rm needs a digest (see `cache verify` output)")?;
            if cache.remove(digest) {
                println!("removed {digest}");
                Ok(())
            } else {
                Err(format!("no entry {digest}"))
            }
        }
        other => Err(format!(
            "unknown cache action {other:?} (expected stats, verify, gc or rm)"
        )),
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.socket.is_none() && args.listen.is_none() {
        return Err("serve needs --socket and/or --listen".to_string());
    }
    if args.listen.is_some() && args.auth_token.is_none() {
        return Err("serving TCP requires --auth-token (the socket is network-reachable)".into());
    }
    if let Some(token) = &args.auth_token {
        auth::validate_token(token)?;
    }
    let cache = open_cache(args)?.ok_or("serve needs --cache-dir")?;
    let rc = run_config(args)?;
    let config = ServerConfig {
        workers: args.workers.unwrap_or(2),
        queue_capacity: args.queue.unwrap_or(64),
    };
    let io_timeout = Duration::from_millis(args.io_timeout_ms.unwrap_or(30_000));
    let opts = ServeOptions {
        auth_token: args.auth_token.clone(),
        read_timeout: io_timeout,
        write_timeout: io_timeout,
        max_connections: args.max_conns.unwrap_or(64),
        ..ServeOptions::default()
    };
    let mut listeners = Vec::new();
    if let Some(socket) = &args.socket {
        let l = Listener::bind_unix(Path::new(socket))
            .map_err(|e| format!("binding unix:{socket}: {e}"))?;
        listeners.push(l);
    }
    if let Some(addr) = &args.listen {
        let l = Listener::bind_tcp(addr).map_err(|e| format!("binding tcp:{addr}: {e}"))?;
        listeners.push(l);
    }
    let server = Server::new(Arc::new(ServeBackend::new(rc)), cache, config);
    for l in &listeners {
        // The actual bound endpoint: `--listen 127.0.0.1:0` resolves to
        // the kernel-assigned port here, which scripts parse.
        println!(
            "serving on {} ({} workers, queue {}, {} conns max{})",
            l.endpoint().describe(),
            config.workers,
            config.queue_capacity,
            opts.max_connections,
            if opts.auth_token.is_some() {
                ", auth required"
            } else {
                ""
            }
        );
    }
    // One serve loop per listener; a SHUTDOWN on either transport wakes
    // and stops both. Errors are joined after all loops exit so one
    // transport failing does not strand the other's cleanup.
    let results: Vec<std::io::Result<()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .iter()
            .map(|l| scope.spawn(|| server.serve(l, &opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serve loop panicked"))
            .collect()
    });
    server.join();
    for (l, r) in listeners.iter().zip(&results) {
        if let Err(e) = r {
            return Err(format!("serving {}: {e}", l.endpoint().describe()));
        }
    }
    let s = server.cache().stats();
    println!(
        "served: {} hits, {} misses, {} coalesced, {} panics contained; cache holds {} entries",
        s.hits,
        s.misses,
        server.coalesced(),
        server.panicked(),
        s.entries
    );
    Ok(())
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    let endpoint = match (&args.socket, &args.addr) {
        (Some(_), Some(_)) => {
            return Err("submit takes --socket or --addr, not both".to_string());
        }
        (Some(socket), None) => Endpoint::unix(socket),
        (None, Some(addr)) => Endpoint::tcp(addr.clone()),
        (None, None) => return Err("submit needs --socket or --addr".to_string()),
    };
    let request = if args.ping {
        "PING".to_string()
    } else if args.server_stats {
        "STATS".to_string()
    } else if args.shutdown {
        "SHUTDOWN".to_string()
    } else {
        let cells: Vec<String> = if args.positionals.is_empty() {
            let workloads = parse_sweep_workloads(&args.workloads)?;
            let presets = parse_sweep_presets(&args.configs)?;
            workloads
                .iter()
                .flat_map(|w| presets.iter().map(|p| format!("{}/{}", w.name, p.name())))
                .collect()
        } else {
            for c in &args.positionals {
                CellSpec::parse(c)?; // fail fast, before the round trip
            }
            args.positionals.clone()
        };
        format!("SWEEP {}", cells.join(" "))
    };
    let mut cfg = ClientConfig::new(endpoint);
    cfg.auth_token = args.auth_token.clone();
    cfg.io_timeout = Duration::from_millis(args.timeout_ms.unwrap_or(30_000));
    if let Some(retries) = args.retries {
        cfg.retries = retries;
    }
    let lines = client::request(&cfg, &request)?;
    let mut errors = 0usize;
    for line in &lines {
        println!("{line}");
        if line.starts_with("ERR") {
            errors += 1;
        }
    }
    if errors > 0 {
        Err(format!("{errors} cell(s) failed"))
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "sweep" => cmd_sweep(&args),
        "check" => cmd_check(&args),
        "cache" => cmd_cache(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        _ => {
            println!("{USAGE}");
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, String> {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_run_flags() {
        let a = args(&[
            "run",
            "--workload",
            "GEMM",
            "--config",
            "By-NVM",
            "--volta",
            "--scale",
            "2",
        ])
        .unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.workload, "GEMM");
        assert_eq!(a.config, "By-NVM");
        assert!(a.volta);
        assert_eq!(a.scale, 2.0);
        assert!(!a.no_skip, "skipping defaults on");
        assert!(run_config(&a).unwrap().skip);
        assert!(!a.no_active_set, "active-set scheduling defaults on");
        assert!(run_config(&a).unwrap().active_set);
    }

    #[test]
    fn no_active_set_reaches_the_engine() {
        let a = args(&["run", "--no-active-set"]).unwrap();
        assert!(a.no_active_set);
        let rc = run_config(&a).unwrap();
        assert!(!rc.active_set, "--no-active-set must reach the engine");
        assert!(rc.skip, "--no-active-set must not disturb cycle skipping");
    }

    #[test]
    fn rejects_unknown_flags_and_bad_scale() {
        assert!(args(&["run", "--bogus"]).is_err());
        assert!(args(&["run", "--scale", "0"]).is_err());
        assert!(args(&["run", "--scale", "x"]).is_err());
        assert!(args(&["run", "--workload"]).is_err());
    }

    #[test]
    fn preset_lookup_is_case_insensitive() {
        assert_eq!(preset_by_name("dy-fuse"), Some(L1Preset::DyFuse));
        assert_eq!(preset_by_name("L1-SRAM"), Some(L1Preset::L1Sram));
        assert_eq!(preset_by_name("nope"), None);
    }

    #[test]
    fn parses_sweep_flags() {
        let a = args(&[
            "sweep",
            "--workloads",
            "ATAX,BICG",
            "--configs",
            "fig13",
            "--threads",
            "4",
            "--json",
            "out.json",
            "--stats-json",
            "digest.json",
            "--no-skip",
        ])
        .unwrap();
        assert_eq!(a.command, "sweep");
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.stats_json.as_deref(), Some("digest.json"));
        assert!(a.no_skip);
        assert!(
            !run_config(&a).unwrap().skip,
            "--no-skip must reach the engine"
        );
        assert_eq!(parse_sweep_workloads(&a.workloads).unwrap().len(), 2);
        assert_eq!(
            parse_sweep_presets(&a.configs).unwrap(),
            L1Preset::FIG13.to_vec()
        );
    }

    #[test]
    fn parses_observability_flags_and_applies_defaults() {
        let a = args(&[
            "run",
            "--metrics-out",
            "prof.json",
            "--trace-out",
            "trace.json",
        ])
        .unwrap();
        let rc = run_config(&a).unwrap();
        assert_eq!(rc.metrics_window, Some(4096), "default window");
        assert_eq!(rc.trace_capacity, Some(65536), "default ring capacity");

        let b = args(&["run", "--metrics-window", "512", "--trace-capacity", "16"]).unwrap();
        let rc = run_config(&b).unwrap();
        assert_eq!(rc.metrics_window, Some(512));
        assert_eq!(rc.trace_capacity, Some(16));

        let plain = run_config(&args(&["run"]).unwrap()).unwrap();
        assert_eq!(plain.metrics_window, None, "observability is opt-in");
        assert_eq!(plain.trace_capacity, None);

        assert!(args(&["run", "--metrics-window", "0"]).is_err());
        assert!(args(&["run", "--trace-capacity", "0"]).is_err());
        assert!(args(&["run", "--metrics-out"]).is_err());
    }

    #[test]
    fn sharding_flags_reach_the_run_config() {
        let a = args(&["run", "--shards", "4"]).unwrap();
        let rc = run_config(&a).unwrap();
        assert_eq!(rc.shards, Some(4));
        assert_eq!(rc.shard_epoch, None, "no epoch flag means strict mode");

        let b = args(&["sweep", "--shards", "2", "--shard-epoch", "64"]).unwrap();
        let rc = run_config(&b).unwrap();
        assert_eq!(rc.shards, Some(2));
        assert_eq!(rc.shard_epoch, Some(64));

        let c = args(&["sweep", "--name", "fig13-shards2", "--shards", "2"]).unwrap();
        assert_eq!(c.name.as_deref(), Some("fig13-shards2"));
    }

    #[test]
    fn sharding_flags_reject_degenerate_counts() {
        // Zero shards and zero epochs are parse errors, not clamps.
        let e = args(&["run", "--shards", "0"]).unwrap_err();
        assert!(e.contains("at least 1"), "got {e:?}");
        let e = args(&["run", "--shards", "2", "--shard-epoch", "0"]).unwrap_err();
        assert!(e.contains("at least 1"), "got {e:?}");
        assert!(args(&["run", "--shards"]).is_err());
        assert!(args(&["run", "--shards", "x"]).is_err());

        // More shards than SMs is a config error with a clear message,
        // not a panic or a silent clamp.
        let a = args(&["run", "--shards", "10000"]).unwrap();
        let e = run_config(&a).unwrap_err();
        assert!(e.contains("exceed"), "got {e:?}");
        assert!(e.contains("SMs"), "got {e:?}");

        // An epoch without sharding is meaningless.
        let a = args(&["run", "--shard-epoch", "32"]).unwrap();
        let e = run_config(&a).unwrap_err();
        assert!(e.contains("requires --shards"), "got {e:?}");
    }

    #[test]
    fn sharding_refuses_the_profiler_and_tracer() {
        for observer in [
            &["run", "--shards", "2", "--metrics-out", "m.json"][..],
            &["run", "--shards", "2", "--trace-out", "t.json"][..],
            &["run", "--shards", "2", "--metrics-window", "512"][..],
            &["run", "--shards", "2", "--trace-capacity", "16"][..],
        ] {
            let a = args(observer).unwrap();
            let e = run_config(&a).unwrap_err();
            assert!(e.contains("--shards"), "got {e:?}");
        }
    }

    #[test]
    fn parses_cache_flags_and_actions() {
        let a = args(&["cache", "stats", "--cache-dir", "/tmp/c"]).unwrap();
        assert_eq!(a.command, "cache");
        assert_eq!(a.positionals, vec!["stats"]);
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/c"));

        let a = args(&[
            "cache",
            "gc",
            "--cache-dir",
            "/tmp/c",
            "--max-bytes",
            "1000",
        ])
        .unwrap();
        assert_eq!(a.positionals, vec!["gc"]);
        assert_eq!(a.max_bytes, Some(1000));

        let a = args(&["cache", "rm", "deadbeef", "--cache-dir", "/tmp/c"]).unwrap();
        assert_eq!(a.positionals, vec!["rm", "deadbeef"]);

        let a = args(&[
            "sweep",
            "--cache-dir",
            "/tmp/c",
            "--cache-max-bytes",
            "4096",
        ])
        .unwrap();
        assert_eq!(a.cache_max_bytes, Some(4096));
        assert!(run_config(&a).is_ok());
    }

    #[test]
    fn cache_refuses_the_profiler_and_tracer() {
        for observer in [
            &["run", "--cache-dir", "/tmp/c", "--metrics-out", "m.json"][..],
            &["run", "--cache-dir", "/tmp/c", "--trace-out", "t.json"][..],
            &["sweep", "--cache-dir", "/tmp/c", "--metrics-window", "512"][..],
            &["run", "--cache-dir", "/tmp/c", "--trace-capacity", "16"][..],
        ] {
            let a = args(observer).unwrap();
            let e = run_config(&a).unwrap_err();
            assert!(e.contains("--cache-dir"), "got {e:?}");
        }
        // Sharded runs ARE cacheable (the key covers the engine choice).
        let a = args(&["run", "--cache-dir", "/tmp/c", "--shards", "2"]).unwrap();
        assert!(run_config(&a).is_ok());
    }

    #[test]
    fn parses_serve_and_submit_flags() {
        let a = args(&[
            "serve",
            "--socket",
            "/tmp/f.sock",
            "--cache-dir",
            "/tmp/c",
            "--workers",
            "4",
            "--queue",
            "128",
        ])
        .unwrap();
        assert_eq!(a.socket.as_deref(), Some("/tmp/f.sock"));
        assert_eq!(a.workers, Some(4));
        assert_eq!(a.queue, Some(128));

        let a = args(&[
            "submit",
            "ATAX/Dy-FUSE",
            "GEMM/L1-SRAM",
            "--socket",
            "/tmp/f.sock",
        ])
        .unwrap();
        assert_eq!(a.positionals, vec!["ATAX/Dy-FUSE", "GEMM/L1-SRAM"]);

        let a = args(&["submit", "--socket", "/tmp/f.sock", "--shutdown"]).unwrap();
        assert!(a.shutdown && !a.ping && !a.server_stats);

        assert!(args(&["serve", "--workers", "0"]).is_err());
        assert!(args(&["serve", "--queue", "0"]).is_err());
    }

    #[test]
    fn parses_tcp_transport_flags() {
        let a = args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--auth-token",
            "s3cr3t",
            "--cache-dir",
            "/tmp/c",
            "--max-conns",
            "8",
            "--io-timeout-ms",
            "5000",
        ])
        .unwrap();
        assert_eq!(a.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(a.auth_token.as_deref(), Some("s3cr3t"));
        assert_eq!(a.max_conns, Some(8));
        assert_eq!(a.io_timeout_ms, Some(5000));

        let a = args(&[
            "submit",
            "ATAX/Dy-FUSE",
            "--addr",
            "127.0.0.1:7070",
            "--auth-token",
            "s3cr3t",
            "--timeout-ms",
            "2000",
            "--retries",
            "5",
        ])
        .unwrap();
        assert_eq!(a.addr.as_deref(), Some("127.0.0.1:7070"));
        assert_eq!(a.timeout_ms, Some(2000));
        assert_eq!(a.retries, Some(5));

        assert!(args(&["serve", "--max-conns", "0"]).is_err());
        assert!(args(&["serve", "--io-timeout-ms", "0"]).is_err());
        assert!(args(&["submit", "--timeout-ms", "0"]).is_err());
    }

    #[test]
    fn serve_and_submit_validate_their_transport_combinations() {
        // TCP serving without a token must be refused up front.
        let a = args(&["serve", "--listen", "127.0.0.1:0", "--cache-dir", "/tmp/c"]).unwrap();
        let e = cmd_serve(&a).unwrap_err();
        assert!(e.contains("--auth-token"), "got {e:?}");
        // Unframeable tokens (whitespace cannot survive the one-line
        // protocol) are refused before binding anything.
        let a = args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--auth-token",
            "two words",
            "--cache-dir",
            "/tmp/c",
        ])
        .unwrap();
        let e = cmd_serve(&a).unwrap_err();
        assert!(e.contains("auth token"), "got {e:?}");
        // No transport at all.
        let a = args(&["serve", "--cache-dir", "/tmp/c"]).unwrap();
        assert!(cmd_serve(&a)
            .unwrap_err()
            .contains("--socket and/or --listen"));
        // submit: exactly one transport.
        let a = args(&["submit", "--ping"]).unwrap();
        assert!(cmd_submit(&a).unwrap_err().contains("--socket or --addr"));
        let a = args(&[
            "submit",
            "--ping",
            "--socket",
            "/tmp/f.sock",
            "--addr",
            "1.2.3.4:1",
        ])
        .unwrap();
        assert!(cmd_submit(&a).unwrap_err().contains("not both"));
    }

    #[test]
    fn positionals_are_rejected_outside_cache_and_submit() {
        let e = args(&["run", "stray"]).unwrap_err();
        assert!(e.contains("positional"), "got {e:?}");
        assert!(args(&["sweep", "ATAX/Dy-FUSE"]).is_err());
    }

    #[test]
    fn sweep_lists_reject_unknown_names() {
        assert!(parse_sweep_workloads("ATAX,nope").is_err());
        assert!(parse_sweep_presets("Dy-FUSE,bogus").is_err());
        assert!(args(&["sweep", "--threads", "0"]).is_err());
        assert_eq!(
            parse_sweep_workloads("all").unwrap().len(),
            all_workloads().len()
        );
    }
}
