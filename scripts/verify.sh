#!/usr/bin/env bash
# Tier-1 verification: everything a PR must pass, fully offline.
#
#   scripts/verify.sh          # fmt + clippy + build + tests
#   scripts/verify.sh --quick  # skip fmt/clippy (tier-1 only)
#   scripts/verify.sh --bench  # (re)emit the fig13-shardsN scaling rows
#                              # in BENCH_sweep.json (schema fuse-sweep-v5)
#
# The workspace has no external dependencies (PRNG, timing harness and
# property generators are all in-repo), so every step below works without
# network access; CARGO_NET_OFFLINE is exported to make that a hard
# guarantee rather than an accident of the local cache.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

quick=false
bench=false
case "${1:-}" in
--quick) quick=true ;;
--bench) bench=true ;;
esac

if $bench; then
    # Intra-simulation scaling axis: one strict sharded fig13 sweep per
    # shard count, each a named row in BENCH_sweep.json. A scaling row
    # measured with more shards than the machine has cores would report
    # scheduler round-robin, not parallel speedup, so those counts are
    # refused outright rather than silently emitted (--threads 1 keeps
    # the cell-level sweep from fighting the shards for the same cores).
    echo "==> cargo build --release (fusesim)"
    cargo build --release --bin fusesim
    cores=$(nproc)
    for shards in 1 2 4 8; do
        if ((shards > cores)); then
            echo "==> fig13-shards${shards}: REFUSED — ${cores} core(s) < ${shards} shards;" \
                "an oversubscribed scaling row would not measure parallelism"
            continue
        fi
        echo "==> fig13-shards${shards}: strict sharded fig13 sweep"
        ./target/release/fusesim sweep --workloads all --configs fig13 \
            --threads 1 --shards "${shards}" --name "fig13-shards${shards}" \
            --json BENCH_sweep.json
    done
    # Result-cache axis: the serve_load bench re-measures the fig13
    # acceptance grid cold and warm (fig13-cold / fig13-warm rows) and
    # asserts the warm pass is >=20x faster and byte-identical.
    echo "==> serve_load: cold/warm/incremental cache rows + service load test"
    cargo bench -p fuse-bench --bench serve_load
    exit 0
fi

if ! $quick; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    # --workspace covers every member crate, fuse-obs (the observability
    # layer) included — a new crate joins fmt/clippy coverage by joining
    # the workspace, no edit here required.
    echo "==> cargo clippy (workspace, all targets, -D warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

# Differential smoke: run the skip and tick engines in lockstep under the
# fuse-check reference-model oracle over the full workload grid plus a
# short fixed fuzz sweep. Exits non-zero on any divergence (DESIGN.md §3f).
echo "==> fusesim check (oracle lockstep grid + fuzz smoke)"
./target/release/fusesim check --seeds 16 --quiet

# Sharded strict smoke: the engine-independent stats digest must come out
# byte-identical with the simulation split across two shard workers
# (DESIGN.md §3g's strict contract, end to end through the CLI).
echo "==> sharded strict smoke (2 shards, stats must match serial bitwise)"
./target/release/fusesim sweep --workloads ATAX,GEMM --configs L1-SRAM,Dy-FUSE \
    --scale 0.1 --threads 1 --stats-json /tmp/fuse-verify-serial.json >/dev/null
./target/release/fusesim sweep --workloads ATAX,GEMM --configs L1-SRAM,Dy-FUSE \
    --scale 0.1 --threads 1 --shards 2 --stats-json /tmp/fuse-verify-sharded.json >/dev/null
diff /tmp/fuse-verify-serial.json /tmp/fuse-verify-sharded.json

# Active-set smoke: the wake-wheel scheduler (the default engine) and
# always-tick must produce byte-identical engine-independent stats
# (DESIGN.md §3i). The serial stats from the sharded smoke above double
# as the active-set reference — same grid, default scheduler.
echo "==> active-set smoke (--no-active-set vs default, stats must match bitwise)"
./target/release/fusesim sweep --workloads ATAX,GEMM --configs L1-SRAM,Dy-FUSE \
    --scale 0.1 --threads 1 --no-active-set \
    --stats-json /tmp/fuse-verify-fulltick.json >/dev/null
diff /tmp/fuse-verify-serial.json /tmp/fuse-verify-fulltick.json

# Scheduler-overhead gate: wheel micro-costs, a toggled cell and the
# toggled acceptance grid — bitwise-identical stats, strictly fewer
# dispatches with the wheel on (like alloc_budget gates allocations).
echo "==> sched_overhead --check (active-set dispatch gate)"
cargo bench -p fuse-bench --bench sched_overhead -- --check

# Relaxed sharded smoke: the oracle audits the epoch-synchronized engine
# on adversarial fuzz machines (shard counts clamp to each machine's SMs).
echo "==> fusesim check --shards 4 (relaxed sharded engine under the oracle)"
./target/release/fusesim check --shards 4 --seeds 16 --skip-grid --quiet

# Result-cache round trip: the fig13 acceptance grid (21 workloads x
# {L1-SRAM, Dy-FUSE}) cold then warm into a fresh cache directory. The
# warm pass must answer all 42 cells from the store — zero simulations —
# and reproduce the engine-independent stats byte for byte, and the
# store must pass its own integrity check (DESIGN.md §3h).
echo "==> result cache round trip (fig13 grid cold, then warm: 100% hits, stats bitwise equal)"
cache_dir=$(mktemp -d /tmp/fuse-verify-cache.XXXXXX)
./target/release/fusesim sweep --workloads all --configs L1-SRAM,Dy-FUSE \
    --scale 0.1 --name cache-smoke --cache-dir "$cache_dir" \
    --stats-json /tmp/fuse-verify-cold.json | grep -F "cache: 0 hit(s), 42 miss(es)"
./target/release/fusesim sweep --workloads all --configs L1-SRAM,Dy-FUSE \
    --scale 0.1 --name cache-smoke --cache-dir "$cache_dir" \
    --stats-json /tmp/fuse-verify-warm.json | grep -F "cache: 42 hit(s), 0 miss(es)"
diff /tmp/fuse-verify-cold.json /tmp/fuse-verify-warm.json
./target/release/fusesim cache verify --cache-dir "$cache_dir" >/dev/null
rm -rf "$cache_dir"

# Service smoke: start `fusesim serve`, race two overlapping batches at
# it, then shut it down cleanly. Coalescing and the bounded queue are
# unit-tested; this exercises the socket path end to end through the CLI.
echo "==> fusesim serve smoke (two overlapping batches, clean shutdown)"
serve_dir=$(mktemp -d /tmp/fuse-verify-serve.XXXXXX)
sock="$serve_dir/fusesim.sock"
./target/release/fusesim serve --socket "$sock" --cache-dir "$serve_dir/cache" \
    --scale 0.1 --workers 2 >/dev/null &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
./target/release/fusesim submit --socket "$sock" \
    ATAX/Dy-FUSE GEMM/Dy-FUSE ATAX/L1-SRAM >/dev/null &
batch_pid=$!
./target/release/fusesim submit --socket "$sock" \
    ATAX/Dy-FUSE GEMM/L1-SRAM ATAX/L1-SRAM >/dev/null
wait "$batch_pid"
./target/release/fusesim submit --socket "$sock" --shutdown >/dev/null
wait "$serve_pid"
rm -rf "$serve_dir"

# TCP service smoke: serve over authenticated loopback (port 0 = kernel
# picks; the bound address is parsed from the startup line), reject a
# wrong token, then do a cold + warm sweep and shut down over the wire.
echo "==> fusesim serve TCP smoke (auth round trip, cold+warm sweep, clean shutdown)"
tcp_dir=$(mktemp -d /tmp/fuse-verify-tcp.XXXXXX)
./target/release/fusesim serve --listen 127.0.0.1:0 --auth-token verify-secret \
    --cache-dir "$tcp_dir/cache" --scale 0.1 --workers 2 >"$tcp_dir/serve.log" &
tcp_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^serving on tcp:\([^ ]*\).*/\1/p' "$tcp_dir/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve never reported its TCP address"; exit 1; }
# The wrong token must be rejected (and must not burn the retry budget).
if ./target/release/fusesim submit --addr "$addr" --auth-token wrong --ping >/dev/null 2>&1; then
    echo "submit with a wrong token must fail"
    exit 1
fi
./target/release/fusesim submit --addr "$addr" --auth-token verify-secret --ping \
    | grep -qx "PONG"
./target/release/fusesim submit --addr "$addr" --auth-token verify-secret \
    ATAX/Dy-FUSE GEMM/L1-SRAM | grep -qx "DONE hits=0 misses=2 errors=0"
./target/release/fusesim submit --addr "$addr" --auth-token verify-secret \
    ATAX/Dy-FUSE GEMM/L1-SRAM | grep -qx "DONE hits=2 misses=0 errors=0"
./target/release/fusesim submit --addr "$addr" --auth-token verify-secret --shutdown >/dev/null
wait "$tcp_pid"
rm -rf "$tcp_dir"

echo "verify: OK"
