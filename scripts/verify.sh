#!/usr/bin/env bash
# Tier-1 verification: everything a PR must pass, fully offline.
#
#   scripts/verify.sh          # fmt + clippy + build + tests
#   scripts/verify.sh --quick  # skip fmt/clippy (tier-1 only)
#
# The workspace has no external dependencies (PRNG, timing harness and
# property generators are all in-repo), so every step below works without
# network access; CARGO_NET_OFFLINE is exported to make that a hard
# guarantee rather than an accident of the local cache.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

quick=false
[[ "${1:-}" == "--quick" ]] && quick=true

if ! $quick; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    # --workspace covers every member crate, fuse-obs (the observability
    # layer) included — a new crate joins fmt/clippy coverage by joining
    # the workspace, no edit here required.
    echo "==> cargo clippy (workspace, all targets, -D warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

# Differential smoke: run the skip and tick engines in lockstep under the
# fuse-check reference-model oracle over the full workload grid plus a
# short fixed fuzz sweep. Exits non-zero on any divergence (DESIGN.md §3f).
echo "==> fusesim check (oracle lockstep grid + fuzz smoke)"
./target/release/fusesim check --seeds 16 --quiet

echo "verify: OK"
